/**
 * @file
 * Scalar CIOS Montgomery multiplication on raw little-endian limbs.
 *
 * This is the single scalar reference implementation behind the whole
 * field stack: fp.hh's montMul() wraps it for every Fp<Tag>, and the
 * portable dispatch arm batches it (two independent limb chains
 * interleaved per loop iteration, the ZKProphet-style latency fix).
 * The vector arms (avx2.cc / avx512.cc) also call it for batch tails.
 *
 * Bit-identity contract: for fully-reduced inputs (< p) the output is
 * the fully-reduced canonical value a * b * R^-1 mod p -- a function
 * of the inputs alone, not of the algorithm. Every kernel in the
 * dispatch layer preserves full reduction, which is what makes
 * cross-arm limb equality a testable invariant rather than a hope.
 *
 * Lazy tier: the Lazy template arm skips the final conditional
 * subtract, closing over [0, 2p) instead. With inputs a, b < 2p the
 * pre-subtract CIOS accumulator is < p + 4p^2/R, which for any
 * modulus with two spare top bits (4p < R, e.g. BN254) is < 2p with
 * a zero overflow limb -- so "skip the subtract" is the entire
 * difference between the tiers, and a strict multiply fed lazy
 * inputs still lands canonical (its one subtract covers [0, 2p)).
 *
 * Header-only and free of fp.hh dependencies so the per-file-ISA
 * translation units can include it without dragging field tags in.
 */

#ifndef GZKP_FF_SIMD_MONT_SCALAR_HH
#define GZKP_FF_SIMD_MONT_SCALAR_HH

#include <cstddef>
#include <cstdint>

namespace gzkp::ff::simd {

using uint128_t = unsigned __int128;

/** limbs(a) >= limbs(b), both N wide. */
template <std::size_t N>
inline bool
limbsGe(const std::uint64_t *a, const std::uint64_t *b)
{
    for (std::size_t i = N; i-- > 0;) {
        if (a[i] < b[i])
            return false;
        if (a[i] > b[i])
            return true;
    }
    return true;
}

/** out = a - b on N limbs (caller guarantees a >= b). */
template <std::size_t N>
inline void
limbsSub(std::uint64_t *out, const std::uint64_t *a,
         const std::uint64_t *b)
{
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < N; ++i) {
        uint128_t t = uint128_t(a[i]) - b[i] - borrow;
        out[i] = std::uint64_t(t);
        borrow = (t >> 64) ? 1 : 0;
    }
}

/**
 * CIOS Montgomery multiplication: out = a * b * R^-1 mod p with
 * R = 2^(64N). Inputs fully reduced; output fully reduced. `out` may
 * alias `a` or `b` (the working state lives in `t`).
 *
 * With Lazy = true, inputs may be anywhere in [0, 2p) and the final
 * conditional subtract is skipped; the output is a valid lazy value
 * in [0, 2p) congruent to a * b * R^-1.
 */
template <std::size_t N, bool Lazy = false>
inline void
montMulLimbs(std::uint64_t *out, const std::uint64_t *a,
             const std::uint64_t *b, const std::uint64_t *p,
             std::uint64_t inv)
{
    std::uint64_t t[N + 2] = {0};
    for (std::size_t i = 0; i < N; ++i) {
        // Multiplication step: t += a[i] * b.
        std::uint64_t c = 0;
        for (std::size_t j = 0; j < N; ++j) {
            uint128_t s = uint128_t(t[j]) + uint128_t(a[i]) * b[j] + c;
            t[j] = std::uint64_t(s);
            c = std::uint64_t(s >> 64);
        }
        uint128_t s = uint128_t(t[N]) + c;
        t[N] = std::uint64_t(s);
        t[N + 1] = std::uint64_t(s >> 64);

        // Reduction step: fold out one limb with m = t[0] * inv.
        std::uint64_t m = t[0] * inv;
        s = uint128_t(t[0]) + uint128_t(m) * p[0];
        c = std::uint64_t(s >> 64);
        for (std::size_t j = 1; j < N; ++j) {
            s = uint128_t(t[j]) + uint128_t(m) * p[j] + c;
            t[j - 1] = std::uint64_t(s);
            c = std::uint64_t(s >> 64);
        }
        s = uint128_t(t[N]) + c;
        t[N - 1] = std::uint64_t(s);
        t[N] = t[N + 1] + std::uint64_t(s >> 64);
        t[N + 1] = 0;
    }
    if constexpr (Lazy) {
        // Overflow limb is provably zero (see file comment); the
        // accumulator itself is the [0, 2p) result.
        for (std::size_t i = 0; i < N; ++i)
            out[i] = t[i];
    } else if (t[N] != 0 || limbsGe<N>(t, p)) {
        limbsSub<N>(out, t, p);
    } else {
        for (std::size_t i = 0; i < N; ++i)
            out[i] = t[i];
    }
}

/**
 * Two independent CIOS multiplications with interleaved limb chains.
 *
 * A single CIOS pass is a long dependency chain (each partial product
 * waits on the previous carry), so the integer ALUs sit idle between
 * steps. Interleaving two *independent* multiplications fills those
 * stalls -- the portable batch arm's whole trick. Results are exactly
 * montMulLimbs of each pair (same operations, same order per chain).
 */
template <std::size_t N, bool Lazy = false>
inline void
montMulLimbs2(std::uint64_t *out0, const std::uint64_t *a0,
              const std::uint64_t *b0, std::uint64_t *out1,
              const std::uint64_t *a1, const std::uint64_t *b1,
              const std::uint64_t *p, std::uint64_t inv)
{
    std::uint64_t t0[N + 2] = {0};
    std::uint64_t t1[N + 2] = {0};
    for (std::size_t i = 0; i < N; ++i) {
        std::uint64_t c0 = 0, c1 = 0;
        for (std::size_t j = 0; j < N; ++j) {
            uint128_t s0 =
                uint128_t(t0[j]) + uint128_t(a0[i]) * b0[j] + c0;
            uint128_t s1 =
                uint128_t(t1[j]) + uint128_t(a1[i]) * b1[j] + c1;
            t0[j] = std::uint64_t(s0);
            c0 = std::uint64_t(s0 >> 64);
            t1[j] = std::uint64_t(s1);
            c1 = std::uint64_t(s1 >> 64);
        }
        uint128_t s0 = uint128_t(t0[N]) + c0;
        uint128_t s1 = uint128_t(t1[N]) + c1;
        t0[N] = std::uint64_t(s0);
        t0[N + 1] = std::uint64_t(s0 >> 64);
        t1[N] = std::uint64_t(s1);
        t1[N + 1] = std::uint64_t(s1 >> 64);

        std::uint64_t m0 = t0[0] * inv;
        std::uint64_t m1 = t1[0] * inv;
        s0 = uint128_t(t0[0]) + uint128_t(m0) * p[0];
        s1 = uint128_t(t1[0]) + uint128_t(m1) * p[0];
        c0 = std::uint64_t(s0 >> 64);
        c1 = std::uint64_t(s1 >> 64);
        for (std::size_t j = 1; j < N; ++j) {
            s0 = uint128_t(t0[j]) + uint128_t(m0) * p[j] + c0;
            s1 = uint128_t(t1[j]) + uint128_t(m1) * p[j] + c1;
            t0[j - 1] = std::uint64_t(s0);
            c0 = std::uint64_t(s0 >> 64);
            t1[j - 1] = std::uint64_t(s1);
            c1 = std::uint64_t(s1 >> 64);
        }
        s0 = uint128_t(t0[N]) + c0;
        s1 = uint128_t(t1[N]) + c1;
        t0[N - 1] = std::uint64_t(s0);
        t0[N] = t0[N + 1] + std::uint64_t(s0 >> 64);
        t0[N + 1] = 0;
        t1[N - 1] = std::uint64_t(s1);
        t1[N] = t1[N + 1] + std::uint64_t(s1 >> 64);
        t1[N + 1] = 0;
    }
    if constexpr (Lazy) {
        for (std::size_t i = 0; i < N; ++i)
            out0[i] = t0[i];
        for (std::size_t i = 0; i < N; ++i)
            out1[i] = t1[i];
        return;
    }
    if (t0[N] != 0 || limbsGe<N>(t0, p))
        limbsSub<N>(out0, t0, p);
    else
        for (std::size_t i = 0; i < N; ++i)
            out0[i] = t0[i];
    if (t1[N] != 0 || limbsGe<N>(t1, p))
        limbsSub<N>(out1, t1, p);
    else
        for (std::size_t i = 0; i < N; ++i)
            out1[i] = t1[i];
}

} // namespace gzkp::ff::simd

#endif // GZKP_FF_SIMD_MONT_SCALAR_HH
