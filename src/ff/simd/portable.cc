/**
 * @file
 * Portable dispatch arm: unrolled scalar CIOS with two interleaved
 * independent limb chains per step (see mont_scalar.hh for why the
 * interleaving matters on dependency-latency-bound cores). Always
 * compiled; the reference every vector arm is differentially tested
 * against, and the tail handler the vector arms borrow for
 * batch-size remainders.
 */

#include "ff/simd/arms.hh"
#include "ff/simd/mont_scalar.hh"

namespace gzkp::ff::simd::detail {

namespace {

void
mulPortable(std::uint64_t *out, const std::uint64_t *a,
            const std::uint64_t *b, std::size_t n, const Mont4 &m)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        montMulLimbs2<4>(out + 4 * i, a + 4 * i, b + 4 * i,
                         out + 4 * (i + 1), a + 4 * (i + 1),
                         b + 4 * (i + 1), m.p, m.inv);
    }
    if (i < n)
        montMulLimbs<4>(out + 4 * i, a + 4 * i, b + 4 * i, m.p, m.inv);
}

void
sqrPortable(std::uint64_t *out, const std::uint64_t *a, std::size_t n,
            const Mont4 &m)
{
    mulPortable(out, a, a, n, m);
}

void
mulcPortable(std::uint64_t *out, const std::uint64_t *a,
             const std::uint64_t *c, std::size_t n, const Mont4 &m)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        montMulLimbs2<4>(out + 4 * i, a + 4 * i, c,
                         out + 4 * (i + 1), a + 4 * (i + 1), c, m.p,
                         m.inv);
    }
    if (i < n)
        montMulLimbs<4>(out + 4 * i, a + 4 * i, c, m.p, m.inv);
}

void
mulPortableLazy(std::uint64_t *out, const std::uint64_t *a,
                const std::uint64_t *b, std::size_t n, const Mont4 &m)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        montMulLimbs2<4, true>(out + 4 * i, a + 4 * i, b + 4 * i,
                               out + 4 * (i + 1), a + 4 * (i + 1),
                               b + 4 * (i + 1), m.p, m.inv);
    }
    if (i < n)
        montMulLimbs<4, true>(out + 4 * i, a + 4 * i, b + 4 * i, m.p,
                              m.inv);
}

void
sqrPortableLazy(std::uint64_t *out, const std::uint64_t *a,
                std::size_t n, const Mont4 &m)
{
    mulPortableLazy(out, a, a, n, m);
}

void
mulcPortableLazy(std::uint64_t *out, const std::uint64_t *a,
                 const std::uint64_t *c, std::size_t n, const Mont4 &m)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        montMulLimbs2<4, true>(out + 4 * i, a + 4 * i, c,
                               out + 4 * (i + 1), a + 4 * (i + 1), c,
                               m.p, m.inv);
    }
    if (i < n)
        montMulLimbs<4, true>(out + 4 * i, a + 4 * i, c, m.p, m.inv);
}

} // namespace

const Kernels4 &
portableKernels4()
{
    static const Kernels4 k = {mulPortable,     sqrPortable,
                               mulcPortable,    mulPortableLazy,
                               sqrPortableLazy, mulcPortableLazy,
                               "portable-cios2"};
    return k;
}

} // namespace gzkp::ff::simd::detail
