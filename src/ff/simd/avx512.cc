/**
 * @file
 * AVX-512 dispatch arm: 8 field elements per batch step.
 *
 * Two kernel families share this translation unit:
 *
 *  - cios32x8: the AVX2 algorithm widened to __m512i (8 x 32-bit-digit
 *    CIOS with _mm512_mul_epu32). Needs only AVX-512F. Same overflow
 *    analysis as avx2.cc.
 *
 *  - ifma52x8: radix-2^52 CIOS using VPMADD52{LO,HI}UQ when the host
 *    has AVX-512 IFMA. Elements are recoded into 5 x 52-bit digits
 *    (5*52 = 260 >= 256); madd52lo/hi give the exact low/high 52 bits
 *    of each 104-bit digit product. Per-step carry bound: the carry
 *    C = (S >> 52) + hi52(product) <= 2^52 + 2, comfortably inside a
 *    64-bit lane. m = T[0] * inv mod 2^52 comes straight from one
 *    madd52lo against inv52 = inv mod 2^52 (valid because
 *    p * inv == -1 mod 2^64 implies the same mod 2^52).
 *
 * avx512Kernels4() picks ifma52x8 iff the binary was compiled with
 * IFMA support *and* CPUID reports avx512ifma; otherwise cios32x8.
 * Both produce canonical fully-reduced outputs -> bit-identical to
 * every other arm.
 *
 * Compiled with -mavx512f (and -mavx512ifma when the compiler has it);
 * callers must check isaSupported(Isa::Avx512) first.
 */

#ifdef GZKP_FF_HAVE_AVX512

#include <immintrin.h>

#include "ff/simd/arms.hh"
#include "ff/simd/mont_scalar.hh"

namespace gzkp::ff::simd::detail {

namespace {

constexpr std::uint64_t kM32 = 0xffffffffull;

//===------------------------- cios32x8 -------------------------===//

struct Ctx32 {
    __m512i p[8];
    __m512i inv32;
    __m512i mask;
    __m512i zero;
};

inline Ctx32
makeCtx32(const Mont4 &m)
{
    Ctx32 c;
    for (int l = 0; l < 4; ++l) {
        c.p[2 * l] = _mm512_set1_epi64((long long)(m.p[l] & kM32));
        c.p[2 * l + 1] =
            _mm512_set1_epi64((long long)(m.p[l] >> 32));
    }
    c.inv32 = _mm512_set1_epi64((long long)(m.inv & kM32));
    c.mask = _mm512_set1_epi64((long long)kM32);
    c.zero = _mm512_setzero_si512();
    return c;
}

inline void
loadDigits32(__m512i D[8], const std::uint64_t *a, const Ctx32 &c)
{
    for (int l = 0; l < 4; ++l) {
        __m512i limb = _mm512_set_epi64(
            (long long)a[28 + l], (long long)a[24 + l],
            (long long)a[20 + l], (long long)a[16 + l],
            (long long)a[12 + l], (long long)a[8 + l],
            (long long)a[4 + l], (long long)a[l]);
        D[2 * l] = _mm512_and_si512(limb, c.mask);
        D[2 * l + 1] = _mm512_srli_epi64(limb, 32);
    }
}

inline void
broadcastDigits32(__m512i D[8], const std::uint64_t *a)
{
    for (int l = 0; l < 4; ++l) {
        D[2 * l] = _mm512_set1_epi64((long long)(a[l] & kM32));
        D[2 * l + 1] = _mm512_set1_epi64((long long)(a[l] >> 32));
    }
}

inline void
storeDigits32(std::uint64_t *out, const __m512i D[8])
{
    alignas(64) std::uint64_t tmp[8];
    for (int l = 0; l < 4; ++l) {
        __m512i limb = _mm512_or_si512(
            D[2 * l], _mm512_slli_epi64(D[2 * l + 1], 32));
        _mm512_store_si512(tmp, limb);
        for (int e = 0; e < 8; ++e)
            out[4 * e + l] = tmp[e];
    }
}

template <bool Lazy = false>
inline void
montCore32(__m512i D[8], const __m512i A[8], const __m512i B[8],
           const Ctx32 &c)
{
    __m512i T[9];
    for (int j = 0; j < 9; ++j)
        T[j] = c.zero;
    __m512i T9 = c.zero;

    for (int i = 0; i < 8; ++i) {
        __m512i C = c.zero;
        for (int j = 0; j < 8; ++j) {
            __m512i S = _mm512_add_epi64(
                _mm512_add_epi64(T[j], _mm512_mul_epu32(A[i], B[j])),
                C);
            T[j] = _mm512_and_si512(S, c.mask);
            C = _mm512_srli_epi64(S, 32);
        }
        __m512i S = _mm512_add_epi64(T[8], C);
        T[8] = _mm512_and_si512(S, c.mask);
        T9 = _mm512_srli_epi64(S, 32);

        __m512i m = _mm512_and_si512(
            _mm512_mul_epu32(T[0], c.inv32), c.mask);
        S = _mm512_add_epi64(T[0], _mm512_mul_epu32(m, c.p[0]));
        C = _mm512_srli_epi64(S, 32);
        for (int j = 1; j < 8; ++j) {
            S = _mm512_add_epi64(
                _mm512_add_epi64(T[j], _mm512_mul_epu32(m, c.p[j])),
                C);
            T[j - 1] = _mm512_and_si512(S, c.mask);
            C = _mm512_srli_epi64(S, 32);
        }
        S = _mm512_add_epi64(T[8], C);
        T[7] = _mm512_and_si512(S, c.mask);
        T[8] = _mm512_add_epi64(T9, _mm512_srli_epi64(S, 32));
    }

    if constexpr (Lazy) {
        for (int j = 0; j < 8; ++j)
            D[j] = T[j];
        return;
    }

    __m512i R[8];
    __m512i borrow = c.zero;
    for (int j = 0; j < 8; ++j) {
        __m512i S = _mm512_sub_epi64(
            _mm512_sub_epi64(T[j], c.p[j]), borrow);
        R[j] = _mm512_and_si512(S, c.mask);
        borrow = _mm512_srli_epi64(S, 63);
    }
    __mmask8 needSub =
        _mm512_cmpneq_epi64_mask(T[8], c.zero) |
        _mm512_cmpeq_epi64_mask(borrow, c.zero);
    for (int j = 0; j < 8; ++j)
        D[j] = _mm512_mask_blend_epi64(needSub, T[j], R[j]);
}

void
mul32(std::uint64_t *out, const std::uint64_t *a,
      const std::uint64_t *b, std::size_t n, const Mont4 &m)
{
    const Ctx32 c = makeCtx32(m);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i A[8], B[8], D[8];
        loadDigits32(A, a + 4 * i, c);
        loadDigits32(B, b + 4 * i, c);
        montCore32(D, A, B, c);
        storeDigits32(out + 4 * i, D);
    }
    for (; i < n; ++i)
        montMulLimbs<4>(out + 4 * i, a + 4 * i, b + 4 * i, m.p, m.inv);
}

void
sqr32(std::uint64_t *out, const std::uint64_t *a, std::size_t n,
      const Mont4 &m)
{
    const Ctx32 c = makeCtx32(m);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i A[8], D[8];
        loadDigits32(A, a + 4 * i, c);
        montCore32(D, A, A, c);
        storeDigits32(out + 4 * i, D);
    }
    for (; i < n; ++i)
        montMulLimbs<4>(out + 4 * i, a + 4 * i, a + 4 * i, m.p, m.inv);
}

void
mulc32(std::uint64_t *out, const std::uint64_t *a,
       const std::uint64_t *cc, std::size_t n, const Mont4 &m)
{
    const Ctx32 c = makeCtx32(m);
    __m512i B[8];
    broadcastDigits32(B, cc);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i A[8], D[8];
        loadDigits32(A, a + 4 * i, c);
        montCore32(D, A, B, c);
        storeDigits32(out + 4 * i, D);
    }
    for (; i < n; ++i)
        montMulLimbs<4>(out + 4 * i, a + 4 * i, cc, m.p, m.inv);
}

void
mul32Lazy(std::uint64_t *out, const std::uint64_t *a,
          const std::uint64_t *b, std::size_t n, const Mont4 &m)
{
    const Ctx32 c = makeCtx32(m);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i A[8], B[8], D[8];
        loadDigits32(A, a + 4 * i, c);
        loadDigits32(B, b + 4 * i, c);
        montCore32<true>(D, A, B, c);
        storeDigits32(out + 4 * i, D);
    }
    for (; i < n; ++i)
        montMulLimbs<4, true>(out + 4 * i, a + 4 * i, b + 4 * i, m.p,
                              m.inv);
}

void
sqr32Lazy(std::uint64_t *out, const std::uint64_t *a, std::size_t n,
          const Mont4 &m)
{
    const Ctx32 c = makeCtx32(m);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i A[8], D[8];
        loadDigits32(A, a + 4 * i, c);
        montCore32<true>(D, A, A, c);
        storeDigits32(out + 4 * i, D);
    }
    for (; i < n; ++i)
        montMulLimbs<4, true>(out + 4 * i, a + 4 * i, a + 4 * i, m.p,
                              m.inv);
}

void
mulc32Lazy(std::uint64_t *out, const std::uint64_t *a,
           const std::uint64_t *cc, std::size_t n, const Mont4 &m)
{
    const Ctx32 c = makeCtx32(m);
    __m512i B[8];
    broadcastDigits32(B, cc);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i A[8], D[8];
        loadDigits32(A, a + 4 * i, c);
        montCore32<true>(D, A, B, c);
        storeDigits32(out + 4 * i, D);
    }
    for (; i < n; ++i)
        montMulLimbs<4, true>(out + 4 * i, a + 4 * i, cc, m.p, m.inv);
}

//===------------------------- ifma52x8 -------------------------===//

#ifdef __AVX512IFMA__

constexpr std::uint64_t kM52 = (1ull << 52) - 1;

struct Ctx52 {
    __m512i p[5];  // modulus in 5 x 52-bit digits, broadcast
    __m512i inv52; // -p^-1 mod 2^52, broadcast
    __m512i mask;  // kM52 per lane
    __m512i zero;
};

inline void
toDigits52(std::uint64_t d[5], const std::uint64_t a[4])
{
    d[0] = a[0] & kM52;
    d[1] = ((a[0] >> 52) | (a[1] << 12)) & kM52;
    d[2] = ((a[1] >> 40) | (a[2] << 24)) & kM52;
    d[3] = ((a[2] >> 28) | (a[3] << 36)) & kM52;
    d[4] = a[3] >> 16;
}

inline Ctx52
makeCtx52(const Mont4 &m)
{
    Ctx52 c;
    std::uint64_t d[5];
    toDigits52(d, m.p);
    for (int j = 0; j < 5; ++j)
        c.p[j] = _mm512_set1_epi64((long long)d[j]);
    c.inv52 = _mm512_set1_epi64((long long)(m.inv & kM52));
    c.mask = _mm512_set1_epi64((long long)kM52);
    c.zero = _mm512_setzero_si512();
    return c;
}

inline void
loadDigits52(__m512i D[5], const std::uint64_t *a, const Ctx52 &c)
{
    __m512i L[4];
    for (int l = 0; l < 4; ++l)
        L[l] = _mm512_set_epi64(
            (long long)a[28 + l], (long long)a[24 + l],
            (long long)a[20 + l], (long long)a[16 + l],
            (long long)a[12 + l], (long long)a[8 + l],
            (long long)a[4 + l], (long long)a[l]);
    D[0] = _mm512_and_si512(L[0], c.mask);
    D[1] = _mm512_and_si512(
        _mm512_or_si512(_mm512_srli_epi64(L[0], 52),
                        _mm512_slli_epi64(L[1], 12)),
        c.mask);
    D[2] = _mm512_and_si512(
        _mm512_or_si512(_mm512_srli_epi64(L[1], 40),
                        _mm512_slli_epi64(L[2], 24)),
        c.mask);
    D[3] = _mm512_and_si512(
        _mm512_or_si512(_mm512_srli_epi64(L[2], 28),
                        _mm512_slli_epi64(L[3], 36)),
        c.mask);
    D[4] = _mm512_srli_epi64(L[3], 16);
}

inline void
broadcastDigits52(__m512i D[5], const std::uint64_t *a)
{
    std::uint64_t d[5];
    toDigits52(d, a);
    for (int j = 0; j < 5; ++j)
        D[j] = _mm512_set1_epi64((long long)d[j]);
}

/**
 * Digits of (value << 4). Five 52-bit reduction folds divide by
 * 2^260, not the canonical R = 2^256, so exactly one operand of every
 * product must carry the compensating 2^4. The top digit stays below
 * 2^52 (operands are < p < 2^254), so montCore52's carry bounds are
 * unchanged and its output remains < 2p before the final subtract.
 */
inline void
shiftDigits4(__m512i S4[5], const __m512i D[5], const Ctx52 &c)
{
    S4[0] = _mm512_and_si512(_mm512_slli_epi64(D[0], 4), c.mask);
    for (int j = 1; j < 5; ++j)
        S4[j] = _mm512_and_si512(
            _mm512_or_si512(_mm512_srli_epi64(D[j - 1], 48),
                            _mm512_slli_epi64(D[j], 4)),
            c.mask);
}

inline void
storeDigits52(std::uint64_t *out, const __m512i D[5])
{
    __m512i L[4];
    L[0] = _mm512_or_si512(D[0], _mm512_slli_epi64(D[1], 52));
    L[1] = _mm512_or_si512(_mm512_srli_epi64(D[1], 12),
                           _mm512_slli_epi64(D[2], 40));
    L[2] = _mm512_or_si512(_mm512_srli_epi64(D[2], 24),
                           _mm512_slli_epi64(D[3], 28));
    L[3] = _mm512_or_si512(_mm512_srli_epi64(D[3], 36),
                           _mm512_slli_epi64(D[4], 16));
    alignas(64) std::uint64_t tmp[8];
    for (int l = 0; l < 4; ++l) {
        _mm512_store_si512(tmp, L[l]);
        for (int e = 0; e < 8; ++e)
            out[4 * e + l] = tmp[e];
    }
}

/**
 * Lazy = true skips the subtract. Bound with lazy inputs: one operand
 * is pre-shifted (16a with a < 2p), so the pre-subtract value is
 * < p + 64p^2/2^260 = p + p*(p/2^254) < 2p for p < 2^254 -- the
 * radix-2^52 headroom absorbs both the shift and the lazy range, and
 * the top digit T[5] stays zero.
 */
template <bool Lazy = false>
inline void
montCore52(__m512i D[5], const __m512i A[5], const __m512i B[5],
           const Ctx52 &c)
{
    __m512i T[6];
    for (int j = 0; j < 6; ++j)
        T[j] = c.zero;
    __m512i T6 = c.zero;

    for (int i = 0; i < 5; ++i) {
        __m512i C = c.zero;
        for (int j = 0; j < 5; ++j) {
            __m512i S = _mm512_add_epi64(
                _mm512_madd52lo_epu64(T[j], A[i], B[j]), C);
            T[j] = _mm512_and_si512(S, c.mask);
            C = _mm512_add_epi64(
                _mm512_srli_epi64(S, 52),
                _mm512_madd52hi_epu64(c.zero, A[i], B[j]));
        }
        __m512i S = _mm512_add_epi64(T[5], C);
        T[5] = _mm512_and_si512(S, c.mask);
        T6 = _mm512_srli_epi64(S, 52);

        __m512i m = _mm512_madd52lo_epu64(c.zero, T[0], c.inv52);
        S = _mm512_madd52lo_epu64(T[0], m, c.p[0]);
        C = _mm512_add_epi64(
            _mm512_srli_epi64(S, 52),
            _mm512_madd52hi_epu64(c.zero, m, c.p[0]));
        for (int j = 1; j < 5; ++j) {
            S = _mm512_add_epi64(
                _mm512_madd52lo_epu64(T[j], m, c.p[j]), C);
            T[j - 1] = _mm512_and_si512(S, c.mask);
            C = _mm512_add_epi64(
                _mm512_srli_epi64(S, 52),
                _mm512_madd52hi_epu64(c.zero, m, c.p[j]));
        }
        S = _mm512_add_epi64(T[5], C);
        T[4] = _mm512_and_si512(S, c.mask);
        T[5] = _mm512_add_epi64(T6, _mm512_srli_epi64(S, 52));
    }

    if constexpr (Lazy) {
        for (int j = 0; j < 5; ++j)
            D[j] = T[j];
        return;
    }

    __m512i R[5];
    __m512i borrow = c.zero;
    for (int j = 0; j < 5; ++j) {
        __m512i S = _mm512_sub_epi64(
            _mm512_sub_epi64(T[j], c.p[j]), borrow);
        R[j] = _mm512_and_si512(S, c.mask);
        borrow = _mm512_srli_epi64(S, 63);
    }
    __mmask8 needSub =
        _mm512_cmpneq_epi64_mask(T[5], c.zero) |
        _mm512_cmpeq_epi64_mask(borrow, c.zero);
    for (int j = 0; j < 5; ++j)
        D[j] = _mm512_mask_blend_epi64(needSub, T[j], R[j]);
}

void
mul52(std::uint64_t *out, const std::uint64_t *a,
      const std::uint64_t *b, std::size_t n, const Mont4 &m)
{
    const Ctx52 c = makeCtx52(m);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i A[5], A4[5], B[5], D[5];
        loadDigits52(A, a + 4 * i, c);
        shiftDigits4(A4, A, c);
        loadDigits52(B, b + 4 * i, c);
        montCore52(D, A4, B, c);
        storeDigits52(out + 4 * i, D);
    }
    for (; i < n; ++i)
        montMulLimbs<4>(out + 4 * i, a + 4 * i, b + 4 * i, m.p, m.inv);
}

void
sqr52(std::uint64_t *out, const std::uint64_t *a, std::size_t n,
      const Mont4 &m)
{
    const Ctx52 c = makeCtx52(m);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i A[5], A4[5], D[5];
        loadDigits52(A, a + 4 * i, c);
        shiftDigits4(A4, A, c);
        montCore52(D, A4, A, c);
        storeDigits52(out + 4 * i, D);
    }
    for (; i < n; ++i)
        montMulLimbs<4>(out + 4 * i, a + 4 * i, a + 4 * i, m.p, m.inv);
}

void
mulc52(std::uint64_t *out, const std::uint64_t *a,
       const std::uint64_t *cc, std::size_t n, const Mont4 &m)
{
    const Ctx52 c = makeCtx52(m);
    __m512i B[5], B4[5];
    broadcastDigits52(B, cc);
    shiftDigits4(B4, B, c);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i A[5], D[5];
        loadDigits52(A, a + 4 * i, c);
        montCore52(D, A, B4, c);
        storeDigits52(out + 4 * i, D);
    }
    for (; i < n; ++i)
        montMulLimbs<4>(out + 4 * i, a + 4 * i, cc, m.p, m.inv);
}

void
mul52Lazy(std::uint64_t *out, const std::uint64_t *a,
          const std::uint64_t *b, std::size_t n, const Mont4 &m)
{
    const Ctx52 c = makeCtx52(m);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i A[5], A4[5], B[5], D[5];
        loadDigits52(A, a + 4 * i, c);
        shiftDigits4(A4, A, c);
        loadDigits52(B, b + 4 * i, c);
        montCore52<true>(D, A4, B, c);
        storeDigits52(out + 4 * i, D);
    }
    for (; i < n; ++i)
        montMulLimbs<4, true>(out + 4 * i, a + 4 * i, b + 4 * i, m.p,
                              m.inv);
}

void
sqr52Lazy(std::uint64_t *out, const std::uint64_t *a, std::size_t n,
          const Mont4 &m)
{
    const Ctx52 c = makeCtx52(m);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i A[5], A4[5], D[5];
        loadDigits52(A, a + 4 * i, c);
        shiftDigits4(A4, A, c);
        montCore52<true>(D, A4, A, c);
        storeDigits52(out + 4 * i, D);
    }
    for (; i < n; ++i)
        montMulLimbs<4, true>(out + 4 * i, a + 4 * i, a + 4 * i, m.p,
                              m.inv);
}

void
mulc52Lazy(std::uint64_t *out, const std::uint64_t *a,
           const std::uint64_t *cc, std::size_t n, const Mont4 &m)
{
    const Ctx52 c = makeCtx52(m);
    __m512i B[5], B4[5];
    broadcastDigits52(B, cc);
    shiftDigits4(B4, B, c);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i A[5], D[5];
        loadDigits52(A, a + 4 * i, c);
        montCore52<true>(D, A, B4, c);
        storeDigits52(out + 4 * i, D);
    }
    for (; i < n; ++i)
        montMulLimbs<4, true>(out + 4 * i, a + 4 * i, cc, m.p, m.inv);
}

#endif // __AVX512IFMA__

} // namespace

const Kernels4 &
avx512Kernels4()
{
    static const Kernels4 k32 = {mul32,     sqr32,     mulc32,
                                 mul32Lazy, sqr32Lazy, mulc32Lazy,
                                 "avx512-cios32x8"};
#ifdef __AVX512IFMA__
    static const Kernels4 k52 = {mul52,     sqr52,     mulc52,
                                 mul52Lazy, sqr52Lazy, mulc52Lazy,
                                 "avx512-ifma52x8"};
    if (__builtin_cpu_supports("avx512ifma"))
        return k52;
#endif
    return k32;
}

} // namespace gzkp::ff::simd::detail

#endif // GZKP_FF_HAVE_AVX512
