/**
 * @file
 * AVX2 dispatch arm: 4 field elements per batch step.
 *
 * AVX2 has no 64x64->128 vector multiply, so elements are transposed
 * into 8 x 32-bit digits and multiplied with _mm256_mul_epu32
 * (32x32->64 per lane). CIOS with digit width w=32, N=8 digits:
 *
 *   accumulate  S = T[j] + a_i*b_j + C
 *               a_i*b_j <= (2^32-1)^2 and T[j], C <= 2^32-1, so
 *               S <= 2^64-1: no lane overflow, ever.
 *   reduce      m = T[0] * inv32 mod 2^32, fold out digit 0.
 *
 * The running value stays < 2p after each outer iteration (the
 * standard CIOS invariant), so the overflow digit T[8] is always 0 or
 * 1 and one conditional subtract of p canonicalizes -- same final
 * reduction rule as the scalar kernel, hence bit-identical outputs.
 *
 * This file is compiled with -mavx2 only (see src/ff/CMakeLists.txt);
 * callers must check isaSupported(Isa::Avx2) first.
 */

#ifdef GZKP_FF_HAVE_AVX2

#include <immintrin.h>

#include "ff/simd/arms.hh"
#include "ff/simd/mont_scalar.hh"

namespace gzkp::ff::simd::detail {

namespace {

constexpr std::uint64_t kM32 = 0xffffffffull;

struct Ctx {
    __m256i p[8];   // modulus digits, broadcast
    __m256i inv32;  // -p^-1 mod 2^32, broadcast
    __m256i mask;   // 0xffffffff per lane
    __m256i zero;
};

inline Ctx
makeCtx(const Mont4 &m)
{
    Ctx c;
    for (int l = 0; l < 4; ++l) {
        c.p[2 * l] =
            _mm256_set1_epi64x((long long)(m.p[l] & kM32));
        c.p[2 * l + 1] =
            _mm256_set1_epi64x((long long)(m.p[l] >> 32));
    }
    c.inv32 = _mm256_set1_epi64x((long long)(m.inv & kM32));
    c.mask = _mm256_set1_epi64x((long long)kM32);
    c.zero = _mm256_setzero_si256();
    return c;
}

/** Transpose 4 contiguous elements (4 limbs each) into digit vectors:
 *  D[d] lane e = digit d of element e. */
inline void
loadDigits(__m256i D[8], const std::uint64_t *a, const Ctx &c)
{
    for (int l = 0; l < 4; ++l) {
        __m256i limb = _mm256_set_epi64x(
            (long long)a[12 + l], (long long)a[8 + l],
            (long long)a[4 + l], (long long)a[l]);
        D[2 * l] = _mm256_and_si256(limb, c.mask);
        D[2 * l + 1] = _mm256_srli_epi64(limb, 32);
    }
}

/** Broadcast one shared element's digits across all lanes. */
inline void
broadcastDigits(__m256i D[8], const std::uint64_t *a)
{
    for (int l = 0; l < 4; ++l) {
        D[2 * l] = _mm256_set1_epi64x((long long)(a[l] & kM32));
        D[2 * l + 1] = _mm256_set1_epi64x((long long)(a[l] >> 32));
    }
}

inline void
storeDigits(std::uint64_t *out, const __m256i D[8])
{
    alignas(32) std::uint64_t tmp[4];
    for (int l = 0; l < 4; ++l) {
        __m256i limb = _mm256_or_si256(
            D[2 * l], _mm256_slli_epi64(D[2 * l + 1], 32));
        _mm256_store_si256((__m256i *)tmp, limb);
        out[l] = tmp[0];
        out[4 + l] = tmp[1];
        out[8 + l] = tmp[2];
        out[12 + l] = tmp[3];
    }
}

/** 4-lane CIOS over digit vectors; D receives the canonical digits
 *  (Lazy = true skips the subtract: digits of a [0, 2p) value, the
 *  overflow digit T[8] provably zero for two-spare-bit moduli). */
template <bool Lazy = false>
inline void
montCore(__m256i D[8], const __m256i A[8], const __m256i B[8],
         const Ctx &c)
{
    __m256i T[9];
    for (int j = 0; j < 9; ++j)
        T[j] = c.zero;
    __m256i T9 = c.zero;

    for (int i = 0; i < 8; ++i) {
        __m256i C = c.zero;
        for (int j = 0; j < 8; ++j) {
            __m256i S = _mm256_add_epi64(
                _mm256_add_epi64(T[j], _mm256_mul_epu32(A[i], B[j])),
                C);
            T[j] = _mm256_and_si256(S, c.mask);
            C = _mm256_srli_epi64(S, 32);
        }
        __m256i S = _mm256_add_epi64(T[8], C);
        T[8] = _mm256_and_si256(S, c.mask);
        T9 = _mm256_srli_epi64(S, 32);

        __m256i m = _mm256_and_si256(
            _mm256_mul_epu32(T[0], c.inv32), c.mask);
        S = _mm256_add_epi64(T[0], _mm256_mul_epu32(m, c.p[0]));
        C = _mm256_srli_epi64(S, 32);
        for (int j = 1; j < 8; ++j) {
            S = _mm256_add_epi64(
                _mm256_add_epi64(T[j], _mm256_mul_epu32(m, c.p[j])),
                C);
            T[j - 1] = _mm256_and_si256(S, c.mask);
            C = _mm256_srli_epi64(S, 32);
        }
        S = _mm256_add_epi64(T[8], C);
        T[7] = _mm256_and_si256(S, c.mask);
        T[8] = _mm256_add_epi64(T9, _mm256_srli_epi64(S, 32));
    }

    if constexpr (Lazy) {
        for (int j = 0; j < 8; ++j)
            D[j] = T[j];
        return;
    }

    // Conditional subtract. Digits are < 2^32, so after the trial
    // subtraction an underflowed lane has bit 63 set -- srli by 63 is
    // the borrow. t >= p iff the overflow digit is set or the trial
    // subtraction did not borrow.
    __m256i R[8];
    __m256i borrow = c.zero;
    for (int j = 0; j < 8; ++j) {
        __m256i S = _mm256_sub_epi64(_mm256_sub_epi64(T[j], c.p[j]),
                                     borrow);
        R[j] = _mm256_and_si256(S, c.mask);
        borrow = _mm256_srli_epi64(S, 63);
    }
    __m256i needSub = _mm256_or_si256(
        _mm256_cmpgt_epi64(T[8], c.zero),
        _mm256_cmpeq_epi64(borrow, c.zero));
    for (int j = 0; j < 8; ++j)
        D[j] = _mm256_blendv_epi8(T[j], R[j], needSub);
}

void
mulAvx2(std::uint64_t *out, const std::uint64_t *a,
        const std::uint64_t *b, std::size_t n, const Mont4 &m)
{
    const Ctx c = makeCtx(m);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i A[8], B[8], D[8];
        loadDigits(A, a + 4 * i, c);
        loadDigits(B, b + 4 * i, c);
        montCore(D, A, B, c);
        storeDigits(out + 4 * i, D);
    }
    for (; i < n; ++i)
        montMulLimbs<4>(out + 4 * i, a + 4 * i, b + 4 * i, m.p, m.inv);
}

void
sqrAvx2(std::uint64_t *out, const std::uint64_t *a, std::size_t n,
        const Mont4 &m)
{
    const Ctx c = makeCtx(m);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i A[8], D[8];
        loadDigits(A, a + 4 * i, c);
        montCore(D, A, A, c);
        storeDigits(out + 4 * i, D);
    }
    for (; i < n; ++i)
        montMulLimbs<4>(out + 4 * i, a + 4 * i, a + 4 * i, m.p, m.inv);
}

void
mulcAvx2(std::uint64_t *out, const std::uint64_t *a,
         const std::uint64_t *cc, std::size_t n, const Mont4 &m)
{
    const Ctx c = makeCtx(m);
    __m256i B[8];
    broadcastDigits(B, cc);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i A[8], D[8];
        loadDigits(A, a + 4 * i, c);
        montCore(D, A, B, c);
        storeDigits(out + 4 * i, D);
    }
    for (; i < n; ++i)
        montMulLimbs<4>(out + 4 * i, a + 4 * i, cc, m.p, m.inv);
}

void
mulAvx2Lazy(std::uint64_t *out, const std::uint64_t *a,
            const std::uint64_t *b, std::size_t n, const Mont4 &m)
{
    const Ctx c = makeCtx(m);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i A[8], B[8], D[8];
        loadDigits(A, a + 4 * i, c);
        loadDigits(B, b + 4 * i, c);
        montCore<true>(D, A, B, c);
        storeDigits(out + 4 * i, D);
    }
    for (; i < n; ++i)
        montMulLimbs<4, true>(out + 4 * i, a + 4 * i, b + 4 * i, m.p,
                              m.inv);
}

void
sqrAvx2Lazy(std::uint64_t *out, const std::uint64_t *a, std::size_t n,
            const Mont4 &m)
{
    const Ctx c = makeCtx(m);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i A[8], D[8];
        loadDigits(A, a + 4 * i, c);
        montCore<true>(D, A, A, c);
        storeDigits(out + 4 * i, D);
    }
    for (; i < n; ++i)
        montMulLimbs<4, true>(out + 4 * i, a + 4 * i, a + 4 * i, m.p,
                              m.inv);
}

void
mulcAvx2Lazy(std::uint64_t *out, const std::uint64_t *a,
             const std::uint64_t *cc, std::size_t n, const Mont4 &m)
{
    const Ctx c = makeCtx(m);
    __m256i B[8];
    broadcastDigits(B, cc);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i A[8], D[8];
        loadDigits(A, a + 4 * i, c);
        montCore<true>(D, A, B, c);
        storeDigits(out + 4 * i, D);
    }
    for (; i < n; ++i)
        montMulLimbs<4, true>(out + 4 * i, a + 4 * i, cc, m.p, m.inv);
}

} // namespace

const Kernels4 &
avx2Kernels4()
{
    static const Kernels4 k = {mulAvx2,     sqrAvx2,     mulcAvx2,
                               mulAvx2Lazy, sqrAvx2Lazy, mulcAvx2Lazy,
                               "avx2-cios32x4"};
    return k;
}

} // namespace gzkp::ff::simd::detail

#endif // GZKP_FF_HAVE_AVX2
