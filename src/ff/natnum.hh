/**
 * @file
 * Arbitrary-precision unsigned integers for one-time constants.
 *
 * NatNum backs computations whose width exceeds any fixed BigInt<N>,
 * e.g. the ~1270-bit hard-part exponent (q^4 - q^2 + 1) / r of the
 * BN254 final exponentiation, or decimal parsing of curve constants.
 * It is deliberately simple (schoolbook everything): all uses are
 * one-time setup work, never on the proving hot path.
 */

#ifndef GZKP_FF_NATNUM_HH
#define GZKP_FF_NATNUM_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ff/bigint.hh"

namespace gzkp::ff {

/**
 * Arbitrary-precision unsigned integer, little-endian 64-bit limbs.
 * The limb vector never has trailing zero limbs (canonical form),
 * and zero is represented by an empty vector.
 */
class NatNum
{
  public:
    NatNum() = default;

    explicit NatNum(std::uint64_t v);

    /** Import from a fixed-width integer. */
    template <std::size_t N>
    static NatNum
    fromBigInt(const BigInt<N> &v)
    {
        NatNum r;
        r.limbs_.assign(v.limbs.begin(), v.limbs.end());
        r.trim();
        return r;
    }

    /** Parse a decimal string. Throws on malformed input. */
    static NatNum fromDec(std::string_view s);

    /** Parse a hex string (optionally "0x"-prefixed). */
    static NatNum fromHex(std::string_view s);

    /** Export to fixed width; throws std::overflow_error if too big. */
    template <std::size_t N>
    BigInt<N>
    toBigInt() const
    {
        if (limbs_.size() > N)
            throw std::overflow_error("NatNum::toBigInt: too wide");
        BigInt<N> r;
        for (std::size_t i = 0; i < limbs_.size(); ++i)
            r.limbs[i] = limbs_[i];
        return r;
    }

    std::string toDec() const;
    std::string toHex() const;

    bool isZero() const { return limbs_.empty(); }
    std::size_t numBits() const;
    bool bit(std::size_t i) const;
    std::size_t numLimbs() const { return limbs_.size(); }
    std::uint64_t limb(std::size_t i) const
    {
        return i < limbs_.size() ? limbs_[i] : 0;
    }

    int cmp(const NatNum &o) const;
    bool operator==(const NatNum &o) const { return cmp(o) == 0; }
    bool operator!=(const NatNum &o) const { return cmp(o) != 0; }
    bool operator<(const NatNum &o) const { return cmp(o) < 0; }
    bool operator<=(const NatNum &o) const { return cmp(o) <= 0; }
    bool operator>(const NatNum &o) const { return cmp(o) > 0; }
    bool operator>=(const NatNum &o) const { return cmp(o) >= 0; }

    NatNum operator+(const NatNum &o) const;

    /** Subtraction; throws std::underflow_error if o > *this. */
    NatNum operator-(const NatNum &o) const;

    NatNum operator*(const NatNum &o) const;

    NatNum shl(std::size_t bits) const;
    NatNum shr(std::size_t bits) const;

    /**
     * Long division: returns quotient, stores remainder in `rem`.
     * Throws std::domain_error on division by zero.
     */
    NatNum divmod(const NatNum &divisor, NatNum &rem) const;

    NatNum operator/(const NatNum &o) const;
    NatNum operator%(const NatNum &o) const;

  private:
    void trim();

    std::vector<std::uint64_t> limbs_;
};

} // namespace gzkp::ff

#endif // GZKP_FF_NATNUM_HH
