/**
 * @file
 * Montgomery-form prime fields over BigInt limbs.
 *
 * This is the integer backend of the GZKP finite-field library
 * (paper Section 4.3): large integers are split into 64-bit limbs and
 * multiplied with the CIOS Montgomery algorithm. The alternative
 * floating-point (base-2^52 + Dekker) backend lives in
 * fpu_backend.hh; both produce identical field values and are
 * cross-checked in tests.
 *
 * Fp<Tag> is parameterised by a tag type supplying the limb count and
 * the modulus as a hex string. All derived constants (Montgomery R,
 * R^2, -p^-1 mod 2^64, 2-adic root of unity, ...) are computed once
 * at first use.
 */

#ifndef GZKP_FF_FP_HH
#define GZKP_FF_FP_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ff/bigint.hh"

namespace gzkp::ff {

/**
 * Derived Montgomery parameters for a prime modulus with N limbs.
 * Built once per field by makeMontParams().
 */
template <std::size_t N>
struct MontParams {
    BigInt<N> modulus;
    std::size_t bits = 0;          //!< bit length of the modulus
    std::uint64_t inv = 0;         //!< -p^-1 mod 2^64
    BigInt<N> r1;                  //!< R mod p (Montgomery form of 1)
    BigInt<N> r2;                  //!< R^2 mod p (conversion constant)
    BigInt<N> pMinus2;             //!< exponent for Fermat inversion
    BigInt<N> pMinus1Half;         //!< (p-1)/2, Euler criterion
    BigInt<N> pPlus1Quarter;       //!< (p+1)/4 (valid when p = 3 mod 4)
    std::size_t twoAdicity = 0;    //!< s with p - 1 = odd * 2^s
    std::uint64_t generator = 0;   //!< small quadratic non-residue g
    BigInt<N> rootOfUnity;         //!< g^((p-1)/2^s), Montgomery form
};

/** Modular addition helper on raw BigInts: (a + b) mod p. */
template <std::size_t N>
inline BigInt<N>
modAdd(const BigInt<N> &a, const BigInt<N> &b, const BigInt<N> &p)
{
    BigInt<N> s;
    std::uint64_t carry = BigInt<N>::add(a, b, s);
    if (carry || s >= p) {
        BigInt<N> t;
        BigInt<N>::sub(s, p, t);
        return t;
    }
    return s;
}

/** Modular subtraction helper on raw BigInts: (a - b) mod p. */
template <std::size_t N>
inline BigInt<N>
modSub(const BigInt<N> &a, const BigInt<N> &b, const BigInt<N> &p)
{
    BigInt<N> s;
    std::uint64_t borrow = BigInt<N>::sub(a, b, s);
    if (borrow) {
        BigInt<N> t;
        BigInt<N>::add(s, p, t);
        return t;
    }
    return s;
}

/**
 * CIOS Montgomery multiplication: returns a * b * R^-1 mod p.
 * Inputs must be fully reduced (< p); the output is fully reduced.
 */
template <std::size_t N>
inline BigInt<N>
montMul(const BigInt<N> &a, const BigInt<N> &b, const MontParams<N> &pp)
{
    const auto &p = pp.modulus.limbs;
    std::uint64_t t[N + 2] = {0};
    for (std::size_t i = 0; i < N; ++i) {
        // Multiplication step: t += a[i] * b.
        std::uint64_t c = 0;
        for (std::size_t j = 0; j < N; ++j) {
            uint128 s = uint128(t[j]) + uint128(a.limbs[i]) * b.limbs[j] + c;
            t[j] = std::uint64_t(s);
            c = std::uint64_t(s >> 64);
        }
        uint128 s = uint128(t[N]) + c;
        t[N] = std::uint64_t(s);
        t[N + 1] = std::uint64_t(s >> 64);

        // Reduction step: fold out one limb with m = t[0] * inv.
        std::uint64_t m = t[0] * pp.inv;
        s = uint128(t[0]) + uint128(m) * p[0];
        c = std::uint64_t(s >> 64);
        for (std::size_t j = 1; j < N; ++j) {
            s = uint128(t[j]) + uint128(m) * p[j] + c;
            t[j - 1] = std::uint64_t(s);
            c = std::uint64_t(s >> 64);
        }
        s = uint128(t[N]) + c;
        t[N - 1] = std::uint64_t(s);
        t[N] = t[N + 1] + std::uint64_t(s >> 64);
        t[N + 1] = 0;
    }
    BigInt<N> r;
    for (std::size_t i = 0; i < N; ++i)
        r.limbs[i] = t[i];
    if (t[N] != 0 || r >= pp.modulus) {
        BigInt<N> tmp;
        BigInt<N>::sub(r, pp.modulus, tmp);
        return tmp;
    }
    return r;
}

/**
 * Build all derived Montgomery parameters from a modulus hex string.
 * The modulus must be an odd prime; primality itself is assumed (the
 * supplied constants are either standard curve parameters or were
 * generated offline with Miller-Rabin, see DESIGN.md).
 */
template <std::size_t N>
MontParams<N>
makeMontParams(const char *modulus_hex)
{
    MontParams<N> pp;
    pp.modulus = BigInt<N>::fromHex(modulus_hex);
    if (!pp.modulus.isOdd())
        throw std::invalid_argument("makeMontParams: modulus must be odd");
    pp.bits = pp.modulus.numBits();

    // inv = -p^-1 mod 2^64 by Newton iteration (5 steps suffice).
    std::uint64_t p0 = pp.modulus.limbs[0];
    std::uint64_t x = p0;
    for (int i = 0; i < 5; ++i)
        x *= 2 - p0 * x;
    pp.inv = ~x + 1; // negate mod 2^64

    // r1 = 2^(64N) mod p and r2 = 2^(128N) mod p by repeated doubling.
    BigInt<N> acc = BigInt<N>::one();
    for (std::size_t i = 0; i < 64 * N; ++i)
        acc = modAdd(acc, acc, pp.modulus);
    pp.r1 = acc;
    for (std::size_t i = 0; i < 64 * N; ++i)
        acc = modAdd(acc, acc, pp.modulus);
    pp.r2 = acc;

    BigInt<N>::sub(pp.modulus, BigInt<N>::fromUint64(2), pp.pMinus2);
    BigInt<N> pm1;
    BigInt<N>::sub(pp.modulus, BigInt<N>::one(), pm1);
    pp.pMinus1Half = pm1.shr(1);
    BigInt<N> pp1;
    std::uint64_t carry = BigInt<N>::add(pp.modulus, BigInt<N>::one(), pp1);
    (void)carry; // moduli never fill all N*64 bits in our curves
    pp.pPlus1Quarter = pp1.shr(2);
    pp.twoAdicity = pm1.countTrailingZeros();

    // Montgomery-form exponentiation helper for the remaining params.
    auto mont_pow = [&pp](BigInt<N> base_m, const BigInt<N> &e) {
        BigInt<N> result = pp.r1;
        for (std::size_t i = e.numBits(); i-- > 0;) {
            result = montMul(result, result, pp);
            if (e.bit(i))
                result = montMul(result, base_m, pp);
        }
        return result;
    };

    // Smallest quadratic non-residue g (Euler criterion), then the
    // 2-adic root of unity omega = g^((p-1)/2^s).
    BigInt<N> minus_one_m = modSub(BigInt<N>::zero(), pp.r1, pp.modulus);
    for (std::uint64_t g = 2;; ++g) {
        BigInt<N> gm = montMul(BigInt<N>::fromUint64(g), pp.r2, pp);
        if (mont_pow(gm, pp.pMinus1Half) == minus_one_m) {
            pp.generator = g;
            BigInt<N> odd_part = pm1.shr(pp.twoAdicity);
            pp.rootOfUnity = mont_pow(gm, odd_part);
            break;
        }
        if (g > 1000)
            throw std::runtime_error("makeMontParams: no QNR found");
    }
    return pp;
}

/**
 * A prime-field element in Montgomery form.
 *
 * @tparam Tag a config type providing
 *   - static constexpr std::size_t kLimbs
 *   - static const char *modulusHex()
 *   - static const char *name()
 */
template <typename Tag>
class Fp
{
  public:
    static constexpr std::size_t kLimbs = Tag::kLimbs;
    using Repr = BigInt<kLimbs>;

    /** Lazily built derived parameters (thread-safe magic static). */
    static const MontParams<kLimbs> &
    params()
    {
        static const MontParams<kLimbs> pp =
            makeMontParams<kLimbs>(Tag::modulusHex());
        return pp;
    }

    static const Repr &modulus() { return params().modulus; }
    static std::size_t bits() { return params().bits; }
    static std::size_t twoAdicity() { return params().twoAdicity; }

    constexpr Fp() = default;

    static Fp zero() { return Fp(); }

    static Fp
    one()
    {
        Fp r;
        r.v_ = params().r1;
        return r;
    }

    /**
     * Convert a standard-form integer into the field. Rejects
     * non-canonical input (>= p) with a typed exception rather than
     * an assert: callers feed this from deserialized bytes, and a
     * release-build silent acceptance would alias two encodings of
     * the same element.
     */
    static Fp
    fromBigInt(const Repr &standard)
    {
        if (!(standard < modulus()))
            throw std::invalid_argument(
                "Fp::fromBigInt: value >= modulus");
        Fp r;
        r.v_ = montMul(standard, params().r2, params());
        return r;
    }

    static Fp
    fromUint64(std::uint64_t x)
    {
        return fromBigInt(Repr::fromUint64(x));
    }

    static Fp
    fromHex(const char *hex)
    {
        return fromBigInt(Repr::fromHex(hex));
    }

    /** Back to standard (non-Montgomery) form. */
    Repr
    toBigInt() const
    {
        return montMul(v_, Repr::one(), params());
    }

    /** Raw Montgomery representation (for serialization / hashing). */
    const Repr &raw() const { return v_; }

    static Fp
    fromRaw(const Repr &mont)
    {
        Fp r;
        r.v_ = mont;
        return r;
    }

    bool isZero() const { return v_.isZero(); }
    bool operator==(const Fp &o) const { return v_ == o.v_; }
    bool operator!=(const Fp &o) const { return v_ != o.v_; }

    Fp
    operator+(const Fp &o) const
    {
        Fp r;
        r.v_ = modAdd(v_, o.v_, modulus());
        return r;
    }

    Fp
    operator-(const Fp &o) const
    {
        Fp r;
        r.v_ = modSub(v_, o.v_, modulus());
        return r;
    }

    Fp
    operator-() const
    {
        Fp r;
        r.v_ = v_.isZero() ? v_ : modSub(Repr::zero(), v_, modulus());
        return r;
    }

    Fp
    operator*(const Fp &o) const
    {
        Fp r;
        r.v_ = montMul(v_, o.v_, params());
        return r;
    }

    Fp &operator+=(const Fp &o) { return *this = *this + o; }
    Fp &operator-=(const Fp &o) { return *this = *this - o; }
    Fp &operator*=(const Fp &o) { return *this = *this * o; }

    Fp squared() const { return *this * *this; }
    Fp dbl() const { return *this + *this; }

    /** Fixed-width exponentiation (exponent in standard form). */
    template <std::size_t M>
    Fp
    pow(const BigInt<M> &e) const
    {
        Fp result = one();
        for (std::size_t i = e.numBits(); i-- > 0;) {
            result = result.squared();
            if (e.bit(i))
                result *= *this;
        }
        return result;
    }

    Fp pow(std::uint64_t e) const { return pow(BigInt<1>::fromUint64(e)); }

    /** Multiplicative inverse by Fermat; zero maps to zero. */
    Fp
    inverse() const
    {
        return pow(params().pMinus2);
    }

    /**
     * Legendre symbol: +1 residue, -1 non-residue, 0 for zero.
     */
    int
    legendre() const
    {
        if (isZero())
            return 0;
        Fp e = pow(params().pMinus1Half);
        return e == one() ? 1 : -1;
    }

    /**
     * Square root for p = 3 mod 4 (all our Fq). Throws if no root
     * exists or the modulus shape is unsupported.
     */
    Fp
    sqrt() const
    {
        if (isZero())
            return zero();
        if (modulus().limbs[0] % 4 != 3)
            throw std::logic_error("Fp::sqrt: need p = 3 mod 4");
        Fp r = pow(params().pPlus1Quarter);
        if (r.squared() != *this)
            throw std::domain_error("Fp::sqrt: not a quadratic residue");
        return r;
    }

    /** 2^k-th primitive root of unity (k <= twoAdicity). */
    static Fp
    rootOfUnity(std::size_t k)
    {
        const auto &pp = params();
        if (k > pp.twoAdicity)
            throw std::invalid_argument("Fp::rootOfUnity: k too large");
        Fp w = fromRaw(pp.rootOfUnity);
        for (std::size_t i = pp.twoAdicity; i > k; --i)
            w = w.squared();
        return w;
    }

    /** Uniform random field element. */
    template <typename Rng>
    static Fp
    random(Rng &rng)
    {
        // Rejection sampling on the top limbs keeps this uniform.
        for (;;) {
            Repr r = Repr::random(rng);
            // Mask down to the modulus bit length to speed acceptance.
            std::size_t top_bits = params().bits % 64;
            if (top_bits != 0) {
                r.limbs[kLimbs - 1] &=
                    (std::uint64_t(-1) >> (64 - top_bits));
            }
            if (r < modulus())
                return fromRaw(r); // uniform over [0,p) in Mont. domain
        }
    }

    std::string toHex() const { return toBigInt().toHex(); }

  private:
    Repr v_; // Montgomery form, always < p
};

/**
 * Batch inversion with Montgomery's trick: replaces n inversions by
 * one inversion plus 3(n-1) multiplications.
 *
 * Zero handling is *skip-and-preserve*, and callers rely on it as a
 * contract (regression-tested in test_fp.cc): a zero entry stays
 * exactly zero and contributes nothing to the prefix products, so
 * every nonzero entry is still replaced by its true inverse. A naive
 * Montgomery chain would fold the zero into the running product and
 * return garbage for *every* element; here the forward pass records
 * the prefix before conditionally multiplying, and the backward pass
 * skips zeros when unwinding. The empty and all-zero vectors are
 * no-ops (inverse() maps the zero running product to zero).
 *
 * This is the shared inversion primitive of the batch-affine MSM
 * scheduler (msm/batch_affine.hh) and of ec::batchToAffine.
 */
template <typename FpT>
void
batchInverse(std::vector<FpT> &xs)
{
    std::vector<FpT> prefix(xs.size());
    FpT acc = FpT::one();
    for (std::size_t i = 0; i < xs.size(); ++i) {
        prefix[i] = acc;
        if (!xs[i].isZero())
            acc *= xs[i];
    }
    FpT inv = acc.inverse();
    for (std::size_t i = xs.size(); i-- > 0;) {
        if (xs[i].isZero())
            continue;
        FpT x_inv = inv * prefix[i];
        inv *= xs[i];
        xs[i] = x_inv;
    }
}

} // namespace gzkp::ff

#endif // GZKP_FF_FP_HH
