/**
 * @file
 * Montgomery-form prime fields over BigInt limbs.
 *
 * This is the integer backend of the GZKP finite-field library
 * (paper Section 4.3): large integers are split into 64-bit limbs and
 * multiplied with the CIOS Montgomery algorithm. The alternative
 * floating-point (base-2^52 + Dekker) backend lives in
 * fpu_backend.hh; both produce identical field values and are
 * cross-checked in tests.
 *
 * Fp<Tag> is parameterised by a tag type supplying the limb count and
 * the modulus as a hex string. All derived constants (Montgomery R,
 * R^2, -p^-1 mod 2^64, 2-adic root of unity, ...) are computed once
 * at first use.
 *
 * Single-element arithmetic is scalar CIOS (ff/simd/mont_scalar.hh)
 * regardless of the host ISA. The *batch* entry points below
 * (mulBatch, sqrBatch, mulcBatch, batchInverse, ...) route 4-limb
 * fields through the runtime-dispatched vector kernels in
 * ff/simd/dispatch.hh; every arm returns canonical fully-reduced
 * values, so batch results are bit-identical to the scalar path.
 */

#ifndef GZKP_FF_FP_HH
#define GZKP_FF_FP_HH

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "ff/bigint.hh"
#include "ff/lazy.hh"
#include "ff/simd/dispatch.hh"
#include "ff/simd/mont_scalar.hh"

namespace gzkp::ff {

/**
 * Derived Montgomery parameters for a prime modulus with N limbs.
 * Built once per field by makeMontParams().
 */
template <std::size_t N>
struct MontParams {
    BigInt<N> modulus;
    std::size_t bits = 0;          //!< bit length of the modulus
    std::uint64_t inv = 0;         //!< -p^-1 mod 2^64
    BigInt<N> r1;                  //!< R mod p (Montgomery form of 1)
    BigInt<N> r2;                  //!< R^2 mod p (conversion constant)
    BigInt<N> pMinus2;             //!< exponent for Fermat inversion
    BigInt<N> pMinus1Half;         //!< (p-1)/2, Euler criterion
    BigInt<N> pPlus1Quarter;       //!< (p+1)/4 (valid when p = 3 mod 4)
    std::size_t twoAdicity = 0;    //!< s with p - 1 = odd * 2^s
    std::uint64_t generator = 0;   //!< small quadratic non-residue g
    BigInt<N> rootOfUnity;         //!< g^((p-1)/2^s), Montgomery form
};

/** Modular addition helper on raw BigInts: (a + b) mod p. */
template <std::size_t N>
inline BigInt<N>
modAdd(const BigInt<N> &a, const BigInt<N> &b, const BigInt<N> &p)
{
    BigInt<N> s;
    std::uint64_t carry = BigInt<N>::add(a, b, s);
    if (carry || s >= p) {
        BigInt<N> t;
        BigInt<N>::sub(s, p, t);
        return t;
    }
    return s;
}

/** Modular subtraction helper on raw BigInts: (a - b) mod p. */
template <std::size_t N>
inline BigInt<N>
modSub(const BigInt<N> &a, const BigInt<N> &b, const BigInt<N> &p)
{
    BigInt<N> s;
    std::uint64_t borrow = BigInt<N>::sub(a, b, s);
    if (borrow) {
        BigInt<N> t;
        BigInt<N>::add(s, p, t);
        return t;
    }
    return s;
}

/**
 * CIOS Montgomery multiplication: returns a * b * R^-1 mod p.
 * Inputs must be fully reduced (< p); the output is fully reduced.
 * Thin wrapper over the shared scalar kernel in ff/simd so exactly
 * one scalar CIOS implementation exists in the tree.
 */
template <std::size_t N>
inline BigInt<N>
montMul(const BigInt<N> &a, const BigInt<N> &b, const MontParams<N> &pp)
{
    BigInt<N> r;
    simd::montMulLimbs<N>(r.limbs.data(), a.limbs.data(),
                          b.limbs.data(), pp.modulus.limbs.data(),
                          pp.inv);
    return r;
}

/**
 * Build all derived Montgomery parameters from a modulus hex string.
 * The modulus must be an odd prime; primality itself is assumed (the
 * supplied constants are either standard curve parameters or were
 * generated offline with Miller-Rabin, see DESIGN.md).
 */
template <std::size_t N>
MontParams<N>
makeMontParams(const char *modulus_hex)
{
    MontParams<N> pp;
    pp.modulus = BigInt<N>::fromHex(modulus_hex);
    if (!pp.modulus.isOdd())
        throw std::invalid_argument("makeMontParams: modulus must be odd");
    pp.bits = pp.modulus.numBits();

    // inv = -p^-1 mod 2^64 by Newton iteration (5 steps suffice).
    std::uint64_t p0 = pp.modulus.limbs[0];
    std::uint64_t x = p0;
    for (int i = 0; i < 5; ++i)
        x *= 2 - p0 * x;
    pp.inv = ~x + 1; // negate mod 2^64

    // r1 = 2^(64N) mod p and r2 = 2^(128N) mod p by repeated doubling.
    BigInt<N> acc = BigInt<N>::one();
    for (std::size_t i = 0; i < 64 * N; ++i)
        acc = modAdd(acc, acc, pp.modulus);
    pp.r1 = acc;
    for (std::size_t i = 0; i < 64 * N; ++i)
        acc = modAdd(acc, acc, pp.modulus);
    pp.r2 = acc;

    BigInt<N>::sub(pp.modulus, BigInt<N>::fromUint64(2), pp.pMinus2);
    BigInt<N> pm1;
    BigInt<N>::sub(pp.modulus, BigInt<N>::one(), pm1);
    pp.pMinus1Half = pm1.shr(1);
    BigInt<N> pp1;
    std::uint64_t carry = BigInt<N>::add(pp.modulus, BigInt<N>::one(), pp1);
    (void)carry; // moduli never fill all N*64 bits in our curves
    pp.pPlus1Quarter = pp1.shr(2);
    pp.twoAdicity = pm1.countTrailingZeros();

    // Montgomery-form exponentiation helper for the remaining params.
    auto mont_pow = [&pp](BigInt<N> base_m, const BigInt<N> &e) {
        BigInt<N> result = pp.r1;
        for (std::size_t i = e.numBits(); i-- > 0;) {
            result = montMul(result, result, pp);
            if (e.bit(i))
                result = montMul(result, base_m, pp);
        }
        return result;
    };

    // Smallest quadratic non-residue g (Euler criterion), then the
    // 2-adic root of unity omega = g^((p-1)/2^s).
    BigInt<N> minus_one_m = modSub(BigInt<N>::zero(), pp.r1, pp.modulus);
    for (std::uint64_t g = 2;; ++g) {
        BigInt<N> gm = montMul(BigInt<N>::fromUint64(g), pp.r2, pp);
        if (mont_pow(gm, pp.pMinus1Half) == minus_one_m) {
            pp.generator = g;
            BigInt<N> odd_part = pm1.shr(pp.twoAdicity);
            pp.rootOfUnity = mont_pow(gm, odd_part);
            break;
        }
        if (g > 1000)
            throw std::runtime_error("makeMontParams: no QNR found");
    }
    return pp;
}

/**
 * A prime-field element in Montgomery form.
 *
 * @tparam Tag a config type providing
 *   - static constexpr std::size_t kLimbs
 *   - static const char *modulusHex()
 *   - static const char *name()
 */
template <typename Tag>
class Fp
{
  public:
    static constexpr std::size_t kLimbs = Tag::kLimbs;
    using Repr = BigInt<kLimbs>;

    /** Lazily built derived parameters (thread-safe magic static). */
    static const MontParams<kLimbs> &
    params()
    {
        static const MontParams<kLimbs> pp =
            makeMontParams<kLimbs>(Tag::modulusHex());
        return pp;
    }

    static const Repr &modulus() { return params().modulus; }
    static std::size_t bits() { return params().bits; }
    static std::size_t twoAdicity() { return params().twoAdicity; }

    constexpr Fp() = default;

    static Fp zero() { return Fp(); }

    static Fp
    one()
    {
        Fp r;
        r.v_ = params().r1;
        return r;
    }

    /**
     * Convert a standard-form integer into the field. Rejects
     * non-canonical input (>= p) with a typed exception rather than
     * an assert: callers feed this from deserialized bytes, and a
     * release-build silent acceptance would alias two encodings of
     * the same element.
     */
    static Fp
    fromBigInt(const Repr &standard)
    {
        if (!(standard < modulus()))
            throw std::invalid_argument(
                "Fp::fromBigInt: value >= modulus");
        Fp r;
        r.v_ = montMul(standard, params().r2, params());
        return r;
    }

    static Fp
    fromUint64(std::uint64_t x)
    {
        return fromBigInt(Repr::fromUint64(x));
    }

    static Fp
    fromHex(const char *hex)
    {
        return fromBigInt(Repr::fromHex(hex));
    }

    /** Back to standard (non-Montgomery) form. */
    Repr
    toBigInt() const
    {
        return montMul(v_, Repr::one(), params());
    }

    /** Raw Montgomery representation (for serialization / hashing). */
    const Repr &raw() const { return v_; }

    static Fp
    fromRaw(const Repr &mont)
    {
        Fp r;
        r.v_ = mont;
        return r;
    }

    bool isZero() const { return v_.isZero(); }
    bool operator==(const Fp &o) const { return v_ == o.v_; }
    bool operator!=(const Fp &o) const { return v_ != o.v_; }

    Fp
    operator+(const Fp &o) const
    {
        Fp r;
        r.v_ = modAdd(v_, o.v_, modulus());
        return r;
    }

    Fp
    operator-(const Fp &o) const
    {
        Fp r;
        r.v_ = modSub(v_, o.v_, modulus());
        return r;
    }

    Fp
    operator-() const
    {
        Fp r;
        r.v_ = v_.isZero() ? v_ : modSub(Repr::zero(), v_, modulus());
        return r;
    }

    Fp
    operator*(const Fp &o) const
    {
        Fp r;
        r.v_ = montMul(v_, o.v_, params());
        return r;
    }

    Fp &operator+=(const Fp &o) { return *this = *this + o; }
    Fp &operator-=(const Fp &o) { return *this = *this - o; }
    Fp &operator*=(const Fp &o) { return *this = *this * o; }

    Fp squared() const { return *this * *this; }
    Fp dbl() const { return *this + *this; }

    /** Fixed-width exponentiation (exponent in standard form). */
    template <std::size_t M>
    Fp
    pow(const BigInt<M> &e) const
    {
        Fp result = one();
        for (std::size_t i = e.numBits(); i-- > 0;) {
            result = result.squared();
            if (e.bit(i))
                result *= *this;
        }
        return result;
    }

    Fp pow(std::uint64_t e) const { return pow(BigInt<1>::fromUint64(e)); }

    /** Multiplicative inverse by Fermat; zero maps to zero. */
    Fp
    inverse() const
    {
        return pow(params().pMinus2);
    }

    /**
     * Legendre symbol: +1 residue, -1 non-residue, 0 for zero.
     */
    int
    legendre() const
    {
        if (isZero())
            return 0;
        Fp e = pow(params().pMinus1Half);
        return e == one() ? 1 : -1;
    }

    /**
     * Square root for p = 3 mod 4 (all our Fq). Throws if no root
     * exists or the modulus shape is unsupported.
     */
    Fp
    sqrt() const
    {
        if (isZero())
            return zero();
        if (modulus().limbs[0] % 4 != 3)
            throw std::logic_error("Fp::sqrt: need p = 3 mod 4");
        Fp r = pow(params().pPlus1Quarter);
        if (r.squared() != *this)
            throw std::domain_error("Fp::sqrt: not a quadratic residue");
        return r;
    }

    /** 2^k-th primitive root of unity (k <= twoAdicity). */
    static Fp
    rootOfUnity(std::size_t k)
    {
        const auto &pp = params();
        if (k > pp.twoAdicity)
            throw std::invalid_argument("Fp::rootOfUnity: k too large");
        Fp w = fromRaw(pp.rootOfUnity);
        for (std::size_t i = pp.twoAdicity; i > k; --i)
            w = w.squared();
        return w;
    }

    /** Uniform random field element. */
    template <typename Rng>
    static Fp
    random(Rng &rng)
    {
        // Rejection sampling on the top limbs keeps this uniform.
        for (;;) {
            Repr r = Repr::random(rng);
            // Mask down to the modulus bit length to speed acceptance.
            std::size_t top_bits = params().bits % 64;
            if (top_bits != 0) {
                r.limbs[kLimbs - 1] &=
                    (std::uint64_t(-1) >> (64 - top_bits));
            }
            if (r < modulus())
                return fromRaw(r); // uniform over [0,p) in Mont. domain
        }
    }

    std::string toHex() const { return toBigInt().toHex(); }

  private:
    Repr v_; // Montgomery form, always < p
};

//===--------------- dispatched batch entry points ---------------===//

namespace detail {

/**
 * True for field types the vector kernel layer can process: exactly
 * 4 x 64-bit limbs laid out as raw storage. SFINAE-friendly so tower
 * or wide fields (no kLimbs, or kLimbs != 4) fall through to the
 * scalar loops without a compile error.
 */
template <typename T, typename = void>
struct IsSimd4 : std::false_type {
};

template <typename T>
struct IsSimd4<T, std::enable_if_t<T::kLimbs == 4>>
    : std::bool_constant<sizeof(T) == 4 * sizeof(std::uint64_t)> {
};

template <typename FpT>
inline std::uint64_t *
limbPtr(FpT *p)
{
    static_assert(sizeof(FpT) == 4 * sizeof(std::uint64_t));
    return reinterpret_cast<std::uint64_t *>(p);
}

template <typename FpT>
inline const std::uint64_t *
limbPtr(const FpT *p)
{
    static_assert(sizeof(FpT) == 4 * sizeof(std::uint64_t));
    return reinterpret_cast<const std::uint64_t *>(p);
}

} // namespace detail

/** Kernel-facing view of a 4-limb field's Montgomery parameters. */
template <typename FpT>
inline const simd::Mont4 &
mont4Params()
{
    static_assert(detail::IsSimd4<FpT>::value,
                  "mont4Params needs a 4-limb field");
    static const simd::Mont4 m = [] {
        simd::Mont4 mm;
        const auto &pp = FpT::params();
        for (std::size_t i = 0; i < 4; ++i)
            mm.p[i] = pp.modulus.limbs[i];
        mm.inv = pp.inv;
        return mm;
    }();
    return m;
}

/**
 * out[i] = a[i] * b[i] for i < n. For 4-limb fields this routes
 * through the active ISA arm (simd::activeIsa()); other widths use
 * the scalar path. out may alias a or b wholesale. Bit-identical to
 * the element-wise scalar product on every arm.
 */
template <typename FpT>
inline void
mulBatch(FpT *out, const FpT *a, const FpT *b, std::size_t n)
{
    if constexpr (detail::IsSimd4<FpT>::value) {
        simd::kernels4().mul(detail::limbPtr(out), detail::limbPtr(a),
                             detail::limbPtr(b), n,
                             mont4Params<FpT>());
    } else {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] * b[i];
    }
}

/** out[i] = a[i]^2. */
template <typename FpT>
inline void
sqrBatch(FpT *out, const FpT *a, std::size_t n)
{
    if constexpr (detail::IsSimd4<FpT>::value) {
        simd::kernels4().sqr(detail::limbPtr(out), detail::limbPtr(a),
                             n, mont4Params<FpT>());
    } else {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i].squared();
    }
}

/** out[i] = a[i] * c for one shared c (NTT nInv scaling, twiddles). */
template <typename FpT>
inline void
mulcBatch(FpT *out, const FpT *a, const FpT &c, std::size_t n)
{
    if constexpr (detail::IsSimd4<FpT>::value) {
        simd::kernels4().mulc(detail::limbPtr(out), detail::limbPtr(a),
                              detail::limbPtr(&c), n,
                              mont4Params<FpT>());
    } else {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = a[i] * c;
    }
}

/** out[i] = a[i] + b[i]; aliasing as in mulBatch. */
template <typename FpT>
inline void
addBatch(FpT *out, const FpT *a, const FpT *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = a[i] + b[i];
}

/** out[i] = a[i] - b[i]; aliasing as in mulBatch. */
template <typename FpT>
inline void
subBatch(FpT *out, const FpT *a, const FpT *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = a[i] - b[i];
}

//===-------------------- lazy-reduction tier --------------------===//
//
// Lazy values are ordinary FpT objects whose raw Montgomery limbs
// live in [0, 2p) instead of [0, p) -- a chain-internal relaxation,
// never a serialized one. Headroom accounting:
//
//   mulBatchLazy / sqrBatchLazy / mulcBatchLazy
//       inputs < 2p  ->  output < 2p   (CIOS minus final subtract;
//                                       needs 4p < 2^256)
//   addBatchLazy / subBatchLazy
//       inputs < 2p  ->  transient < 4p inside the op, one
//                        conditional subtract of 2p -> output < 2p
//   canonicalizeBatch
//       input < 2p   ->  output < p    (the unique representative)
//
// A *strict* multiply fed lazy inputs also lands canonical (its one
// conditional subtract covers [0, 2p)), so chains that end in a
// strict mul need no separate canonicalize pass -- the inverse NTT's
// nInv scaling and the batch-affine y3 row exploit this.
//
// Debug builds assert the input range on every lazy entry point; the
// asserts cannot fire from faultsim corruption because flipBit
// re-canonicalizes below p. Fields without two spare top bits
// (bits > 254, e.g. BLS12-381 Fr) and non-4-limb fields are not
// eligible: every lazy entry point degrades to its strict
// counterpart there, so generic consumers can call the lazy names
// unconditionally and stay correct (the chain is then strict
// end-to-end and canonicalizeBatch is a no-op).

/** 2p as a raw Repr, cached per field (fits: our moduli are < 2^255). */
template <typename FpT>
inline const typename FpT::Repr &
twoPRepr()
{
    using Repr = typename FpT::Repr;
    static const Repr tp = [] {
        Repr t;
        Repr::add(FpT::modulus(), FpT::modulus(), t);
        return t;
    }();
    return tp;
}

/**
 * True when FpT can carry lazy values: 4-limb (vector-kernel layout)
 * and 4p < 2^256 so the subtract-free CIOS closure bound holds.
 */
template <typename FpT>
inline bool
lazyEligible()
{
    if constexpr (!detail::IsSimd4<FpT>::value) {
        return false;
    } else {
        static const bool ok = FpT::bits() <= 254;
        return ok;
    }
}

namespace detail {

/** Debug-build headroom check: every element < 2p. */
template <typename FpT>
inline void
assertLazyRange(const FpT *a, std::size_t n)
{
#ifndef NDEBUG
    for (std::size_t i = 0; i < n; ++i)
        assert(a[i].raw() < twoPRepr<FpT>() &&
               "lazy headroom overflow: value >= 2p");
#else
    (void)a;
    (void)n;
#endif
}

} // namespace detail

/** Lazy product: inputs in [0, 2p), output in [0, 2p). */
template <typename FpT>
inline void
mulBatchLazy(FpT *out, const FpT *a, const FpT *b, std::size_t n)
{
    if constexpr (detail::IsSimd4<FpT>::value) {
        if (lazyEligible<FpT>()) {
            detail::assertLazyRange(a, n);
            detail::assertLazyRange(b, n);
            simd::kernels4().mulLazy(detail::limbPtr(out),
                                     detail::limbPtr(a),
                                     detail::limbPtr(b), n,
                                     mont4Params<FpT>());
            return;
        }
    }
    mulBatch(out, a, b, n);
}

/** Lazy square: input in [0, 2p), output in [0, 2p). */
template <typename FpT>
inline void
sqrBatchLazy(FpT *out, const FpT *a, std::size_t n)
{
    if constexpr (detail::IsSimd4<FpT>::value) {
        if (lazyEligible<FpT>()) {
            detail::assertLazyRange(a, n);
            simd::kernels4().sqrLazy(detail::limbPtr(out),
                                     detail::limbPtr(a), n,
                                     mont4Params<FpT>());
            return;
        }
    }
    sqrBatch(out, a, n);
}

/** Lazy scaling by one shared c (c itself may be lazy). */
template <typename FpT>
inline void
mulcBatchLazy(FpT *out, const FpT *a, const FpT &c, std::size_t n)
{
    if constexpr (detail::IsSimd4<FpT>::value) {
        if (lazyEligible<FpT>()) {
            detail::assertLazyRange(a, n);
            detail::assertLazyRange(&c, 1);
            simd::kernels4().mulcLazy(detail::limbPtr(out),
                                      detail::limbPtr(a),
                                      detail::limbPtr(&c), n,
                                      mont4Params<FpT>());
            return;
        }
    }
    mulcBatch(out, a, c, n);
}

/** Lazy sum: a + b < 4p, one conditional subtract of 2p. */
template <typename FpT>
inline void
addBatchLazy(FpT *out, const FpT *a, const FpT *b, std::size_t n)
{
    // The constexpr gate keeps the limb-level body out of extension
    // fields (Fp2 has no raw()/Repr); they take the strict path.
    if constexpr (detail::IsSimd4<FpT>::value) {
        if (lazyEligible<FpT>()) {
            detail::assertLazyRange(a, n);
            detail::assertLazyRange(b, n);
            using Repr = typename FpT::Repr;
            const Repr &tp = twoPRepr<FpT>();
            for (std::size_t i = 0; i < n; ++i) {
                Repr s;
                // < 4p < 2^256: no carry out.
                Repr::add(a[i].raw(), b[i].raw(), s);
                if (!(s < tp)) {
                    Repr t;
                    Repr::sub(s, tp, t);
                    s = t;
                }
                out[i] = FpT::fromRaw(s);
            }
            return;
        }
    }
    addBatch(out, a, b, n);
}

/** Lazy difference: a + (2p - b), one conditional subtract of 2p. */
template <typename FpT>
inline void
subBatchLazy(FpT *out, const FpT *a, const FpT *b, std::size_t n)
{
    if constexpr (detail::IsSimd4<FpT>::value) {
        if (lazyEligible<FpT>()) {
            detail::assertLazyRange(a, n);
            detail::assertLazyRange(b, n);
            using Repr = typename FpT::Repr;
            const Repr &tp = twoPRepr<FpT>();
            for (std::size_t i = 0; i < n; ++i) {
                Repr neg;
                Repr::sub(tp, b[i].raw(), neg); // b < 2p: no borrow
                Repr s;
                Repr::add(a[i].raw(), neg, s);
                if (!(s < tp)) {
                    Repr t;
                    Repr::sub(s, tp, t);
                    s = t;
                }
                out[i] = FpT::fromRaw(s);
            }
            return;
        }
    }
    subBatch(out, a, b, n);
}

/**
 * Restore canonical form in place: the unique representative < p.
 * Accepts the full [0, 4p) headroom range (two conditional
 * subtracts); a no-op on already-canonical data, so it is safe to
 * run unconditionally at tier boundaries.
 */
template <typename FpT>
inline void
canonicalizeBatch(FpT *a, std::size_t n)
{
    // Non-limb fields (Fp2) never carry lazy values -- every lazy
    // entry point is strict for them -- so this is a no-op there.
    if constexpr (detail::IsSimd4<FpT>::value) {
        using Repr = typename FpT::Repr;
        const Repr &p = FpT::modulus();
        for (std::size_t i = 0; i < n; ++i) {
            Repr v = a[i].raw();
            for (int k = 0; k < 2 && !(v < p); ++k) {
                Repr t;
                Repr::sub(v, p, t);
                v = t;
            }
            assert(v < p && "canonicalizeBatch: value >= 4p");
            a[i] = FpT::fromRaw(v);
        }
    } else {
        (void)a;
        (void)n;
    }
}

/**
 * A scalar field element carried in the lazy representation
 * ([0, 2p) raw Montgomery limbs). The type exists to keep lazy and
 * canonical values apart in scalar code and tests -- the batch hot
 * paths stay on raw FpT arrays and document their ranges instead.
 * Comparison is deliberately absent: canonicalize first.
 */
template <typename Tag>
class FpLazy
{
  public:
    using F = Fp<Tag>;
    using Repr = typename F::Repr;

    FpLazy() = default;

    /** Widen a canonical element (always in range). */
    explicit FpLazy(const F &x) : v_(x.raw()) {}

    /** Adopt raw limbs already known to be < 2p. */
    static FpLazy
    fromRaw(const Repr &r)
    {
        FpLazy x;
        x.v_ = r;
        assert(x.v_ < twoPRepr<F>() && "FpLazy::fromRaw: value >= 2p");
        return x;
    }

    const Repr &raw() const { return v_; }

    /** The unique canonical representative. */
    F
    canonicalize() const
    {
        Repr v = v_;
        if (!(v < F::modulus())) {
            Repr t;
            Repr::sub(v, F::modulus(), t);
            v = t;
        }
        return F::fromRaw(v);
    }

  private:
    Repr v_; // Montgomery form, always < 2p
};

/** Scalar lazy sum (see addBatchLazy for the bound). */
template <typename Tag>
inline FpLazy<Tag>
addLazy(const FpLazy<Tag> &a, const FpLazy<Tag> &b)
{
    using F = Fp<Tag>;
    using Repr = typename F::Repr;
    const Repr &tp = twoPRepr<F>();
    Repr s;
    Repr::add(a.raw(), b.raw(), s);
    if (!(s < tp)) {
        Repr t;
        Repr::sub(s, tp, t);
        s = t;
    }
    return FpLazy<Tag>::fromRaw(s);
}

/** Scalar lazy difference (see subBatchLazy for the bound). */
template <typename Tag>
inline FpLazy<Tag>
subLazy(const FpLazy<Tag> &a, const FpLazy<Tag> &b)
{
    using F = Fp<Tag>;
    using Repr = typename F::Repr;
    const Repr &tp = twoPRepr<F>();
    Repr neg;
    Repr::sub(tp, b.raw(), neg);
    Repr s;
    Repr::add(a.raw(), neg, s);
    if (!(s < tp)) {
        Repr t;
        Repr::sub(s, tp, t);
        s = t;
    }
    return FpLazy<Tag>::fromRaw(s);
}

/** Scalar lazy Montgomery product (CIOS minus the final subtract). */
template <typename Tag>
inline FpLazy<Tag>
mulLazy(const FpLazy<Tag> &a, const FpLazy<Tag> &b)
{
    using F = Fp<Tag>;
    static_assert(F::kLimbs == 4,
                  "scalar mulLazy is defined for 4-limb fields");
    typename F::Repr r;
    simd::montMulLimbs<4, true>(r.limbs.data(), a.raw().limbs.data(),
                                b.raw().limbs.data(),
                                F::params().modulus.limbs.data(),
                                F::params().inv);
    return FpLazy<Tag>::fromRaw(r);
}

/**
 * out[i] = a[i]^e for one shared standard-form exponent, by batched
 * square-and-multiply (the whole batch shares the exponent's bit
 * pattern, so every step is one sqrBatch and at most one mulBatch).
 * out must not partially overlap a; out == a is allowed.
 */
template <typename FpT, std::size_t M>
inline void
powBatch(FpT *out, const FpT *a, const BigInt<M> &e, std::size_t n)
{
    std::vector<FpT> base(a, a + n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = FpT::one();
    for (std::size_t i = e.numBits(); i-- > 0;) {
        sqrBatch(out, out, n);
        if (e.bit(i))
            mulBatch(out, out, base.data(), n);
    }
}

namespace detail {

/** The classic serial Montgomery chain; see batchInverse for the
 *  zero-handling contract. */
template <typename FpT>
void
batchInverseSerial(std::vector<FpT> &xs)
{
    std::vector<FpT> prefix(xs.size());
    FpT acc = FpT::one();
    for (std::size_t i = 0; i < xs.size(); ++i) {
        prefix[i] = acc;
        if (!xs[i].isZero())
            acc *= xs[i];
    }
    FpT inv = acc.inverse();
    for (std::size_t i = xs.size(); i-- > 0;) {
        if (xs[i].isZero())
            continue;
        FpT x_inv = inv * prefix[i];
        inv *= xs[i];
        xs[i] = x_inv;
    }
}

/**
 * Lane-blocked batch inversion: L independent Montgomery chains, one
 * per lane, advanced a row (L contiguous elements) at a time so every
 * multiplication is a dispatched mulBatch. The L lane products plus
 * the tail elements are then inverted together with one serial chain
 * (one actual field inversion for the whole call), and the backward
 * unwind replays the rows with two mulBatch per row.
 *
 * Zeros are substituted with one() in a cleaned copy (so chains stay
 * invertible) and skipped on write-back, preserving the
 * skip-and-preserve contract. Outputs are bit-identical to the serial
 * path: each nonzero x gets its unique canonical inverse, whatever
 * the grouping.
 */
template <typename FpT>
void
batchInverseBlocked(std::vector<FpT> &xs)
{
    constexpr std::size_t L = 16;
    const std::size_t n = xs.size();
    const std::size_t rows = n / L;
    const std::size_t head = rows * L;

    std::vector<FpT> xc(n);
    for (std::size_t i = 0; i < n; ++i)
        xc[i] = xs[i].isZero() ? FpT::one() : xs[i];

    // Under the lazy tier the forward lane products ride in [0, 2p):
    // the serial combo chain and the backward unwind below consist
    // solely of strict Montgomery multiplies, each of which absorbs a
    // lazy operand and lands canonical (see the lazy-tier section),
    // so outputs stay bit-identical to the strict path.
    const bool lazy = lazyEligible<FpT>() && lazyEnabled();

    std::vector<FpT> prefix(head);
    std::array<FpT, L> acc;
    acc.fill(FpT::one());
    for (std::size_t r = 0; r < rows; ++r) {
        std::copy(acc.begin(), acc.end(), prefix.begin() + r * L);
        if (lazy)
            mulBatchLazy(acc.data(), acc.data(), xc.data() + r * L, L);
        else
            mulBatch(acc.data(), acc.data(), xc.data() + r * L, L);
    }

    // One inversion covers the L lane products and the tail.
    std::vector<FpT> combo(acc.begin(), acc.end());
    combo.insert(combo.end(), xc.begin() + head, xc.end());
    batchInverseSerial(combo);

    for (std::size_t i = head; i < n; ++i)
        if (!xs[i].isZero())
            xs[i] = combo[L + (i - head)];

    std::array<FpT, L> inv;
    std::copy(combo.begin(), combo.begin() + L, inv.begin());
    std::array<FpT, L> row_inv;
    for (std::size_t r = rows; r-- > 0;) {
        mulBatch(row_inv.data(), inv.data(), prefix.data() + r * L, L);
        mulBatch(inv.data(), inv.data(), xc.data() + r * L, L);
        for (std::size_t l = 0; l < L; ++l)
            if (!xs[r * L + l].isZero())
                xs[r * L + l] = row_inv[l];
    }
}

} // namespace detail

/**
 * Batch inversion with Montgomery's trick: replaces n inversions by
 * one inversion plus ~3n multiplications.
 *
 * Zero handling is *skip-and-preserve*, and callers rely on it as a
 * contract (regression-tested in test_fp.cc): a zero entry stays
 * exactly zero and contributes nothing to the prefix products, so
 * every nonzero entry is still replaced by its true inverse. A naive
 * Montgomery chain would fold the zero into the running product and
 * return garbage for *every* element; here the forward pass records
 * the prefix before conditionally multiplying, and the backward pass
 * skips zeros when unwinding. The empty and all-zero vectors are
 * no-ops (inverse() maps the zero running product to zero).
 *
 * Large 4-limb batches take the lane-blocked path so the ~3n
 * multiplications run through the dispatched vector kernels; results
 * are bit-identical either way. The threshold stays well above the
 * crossover so small batches (batch-affine flush tails, tiny
 * denominator sets) never pay the blocking overhead.
 *
 * This is the shared inversion primitive of the batch-affine MSM
 * scheduler (msm/batch_affine.hh) and of ec::batchToAffine.
 */
template <typename FpT>
void
batchInverse(std::vector<FpT> &xs)
{
    if constexpr (detail::IsSimd4<FpT>::value) {
        if (xs.size() >= 64) {
            detail::batchInverseBlocked(xs);
            return;
        }
    }
    detail::batchInverseSerial(xs);
}

} // namespace gzkp::ff

#endif // GZKP_FF_FP_HH
