/**
 * @file
 * Fixed-width little-endian multi-limb unsigned integers.
 *
 * BigInt<N> is the raw storage type underneath every finite-field
 * element in GZKP-CPP. A value is N 64-bit limbs, least-significant
 * limb first, matching the machine-word decomposition the paper
 * describes in Section 2.1 (r = sum r_i * D^i with D = 2^64).
 *
 * Only plain integer arithmetic lives here; modular arithmetic is in
 * fp.hh. Everything is header-only so the compiler can fully unroll
 * the small fixed-size loops (N is 4, 6, or 12 in practice).
 */

#ifndef GZKP_FF_BIGINT_HH
#define GZKP_FF_BIGINT_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gzkp::ff {

using uint128 = unsigned __int128;

/**
 * Fixed-width unsigned integer with N 64-bit limbs (little-endian).
 */
template <std::size_t N>
struct BigInt {
    static constexpr std::size_t kLimbs = N;
    static constexpr std::size_t kBits = N * 64;

    std::array<std::uint64_t, N> limbs{};

    constexpr BigInt() = default;

    /** Construct from a single machine word. */
    static constexpr BigInt
    fromUint64(std::uint64_t v)
    {
        BigInt r;
        r.limbs[0] = v;
        return r;
    }

    static constexpr BigInt zero() { return BigInt(); }
    static constexpr BigInt one() { return fromUint64(1); }

    /**
     * Parse a hex string (optionally "0x"-prefixed). Throws
     * std::invalid_argument on malformed input or overflow.
     */
    static BigInt
    fromHex(std::string_view s)
    {
        if (s.size() >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X'))
            s.remove_prefix(2);
        if (s.empty())
            throw std::invalid_argument("BigInt::fromHex: empty string");
        BigInt r;
        std::size_t bit = 0;
        for (std::size_t i = 0; i < s.size(); ++i) {
            char c = s[s.size() - 1 - i];
            std::uint64_t v;
            if (c >= '0' && c <= '9') v = c - '0';
            else if (c >= 'a' && c <= 'f') v = 10 + (c - 'a');
            else if (c >= 'A' && c <= 'F') v = 10 + (c - 'A');
            else
                throw std::invalid_argument("BigInt::fromHex: bad digit");
            bit = i * 4;
            if (v != 0 && bit + 4 > kBits && (bit >= kBits || (v >> (kBits - bit)) != 0))
                throw std::invalid_argument("BigInt::fromHex: overflow");
            if (bit < kBits)
                r.limbs[bit / 64] |= v << (bit % 64);
        }
        return r;
    }

    /** Render as lowercase hex with "0x" prefix, no leading zeros. */
    std::string
    toHex() const
    {
        static const char *digits = "0123456789abcdef";
        std::string out;
        bool started = false;
        for (std::size_t i = N; i-- > 0;) {
            for (int shift = 60; shift >= 0; shift -= 4) {
                unsigned d = (limbs[i] >> shift) & 0xf;
                if (d != 0)
                    started = true;
                if (started)
                    out.push_back(digits[d]);
            }
        }
        if (!started)
            out = "0";
        return "0x" + out;
    }

    constexpr bool
    isZero() const
    {
        for (std::size_t i = 0; i < N; ++i)
            if (limbs[i] != 0)
                return false;
        return true;
    }

    constexpr bool isOdd() const { return limbs[0] & 1; }

    /** Bit i (0 = least significant). Out-of-range bits read as 0. */
    constexpr bool
    bit(std::size_t i) const
    {
        if (i >= kBits)
            return false;
        return (limbs[i / 64] >> (i % 64)) & 1;
    }

    constexpr void
    setBit(std::size_t i)
    {
        limbs[i / 64] |= std::uint64_t(1) << (i % 64);
    }

    /** Index of the highest set bit plus one; 0 for zero. */
    constexpr std::size_t
    numBits() const
    {
        for (std::size_t i = N; i-- > 0;) {
            if (limbs[i] != 0) {
                std::uint64_t v = limbs[i];
                std::size_t b = 0;
                while (v != 0) {
                    v >>= 1;
                    ++b;
                }
                return i * 64 + b;
            }
        }
        return 0;
    }

    /** Number of trailing zero bits (kBits for zero). */
    constexpr std::size_t
    countTrailingZeros() const
    {
        for (std::size_t i = 0; i < N; ++i) {
            if (limbs[i] != 0) {
                std::uint64_t v = limbs[i];
                std::size_t b = 0;
                while ((v & 1) == 0) {
                    v >>= 1;
                    ++b;
                }
                return i * 64 + b;
            }
        }
        return kBits;
    }

    /** Three-way compare: -1, 0, +1. */
    constexpr int
    cmp(const BigInt &o) const
    {
        for (std::size_t i = N; i-- > 0;) {
            if (limbs[i] < o.limbs[i])
                return -1;
            if (limbs[i] > o.limbs[i])
                return 1;
        }
        return 0;
    }

    constexpr bool operator==(const BigInt &o) const { return cmp(o) == 0; }
    constexpr bool operator!=(const BigInt &o) const { return cmp(o) != 0; }
    constexpr bool operator<(const BigInt &o) const { return cmp(o) < 0; }
    constexpr bool operator<=(const BigInt &o) const { return cmp(o) <= 0; }
    constexpr bool operator>(const BigInt &o) const { return cmp(o) > 0; }
    constexpr bool operator>=(const BigInt &o) const { return cmp(o) >= 0; }

    /** out = a + b; returns the carry out of the top limb. */
    static constexpr std::uint64_t
    add(const BigInt &a, const BigInt &b, BigInt &out)
    {
        std::uint64_t carry = 0;
        for (std::size_t i = 0; i < N; ++i) {
            uint128 t = uint128(a.limbs[i]) + b.limbs[i] + carry;
            out.limbs[i] = std::uint64_t(t);
            carry = std::uint64_t(t >> 64);
        }
        return carry;
    }

    /** out = a - b; returns the borrow out of the top limb (0 or 1). */
    static constexpr std::uint64_t
    sub(const BigInt &a, const BigInt &b, BigInt &out)
    {
        std::uint64_t borrow = 0;
        for (std::size_t i = 0; i < N; ++i) {
            uint128 t = uint128(a.limbs[i]) - b.limbs[i] - borrow;
            out.limbs[i] = std::uint64_t(t);
            borrow = (t >> 64) ? 1 : 0;
        }
        return borrow;
    }

    /** Full schoolbook product a * b, 2N limbs wide. */
    static constexpr BigInt<2 * N>
    mulWide(const BigInt &a, const BigInt &b)
    {
        BigInt<2 * N> out;
        for (std::size_t i = 0; i < N; ++i) {
            std::uint64_t carry = 0;
            for (std::size_t j = 0; j < N; ++j) {
                uint128 t = uint128(a.limbs[i]) * b.limbs[j] +
                    out.limbs[i + j] + carry;
                out.limbs[i + j] = std::uint64_t(t);
                carry = std::uint64_t(t >> 64);
            }
            out.limbs[i + N] = carry;
        }
        return out;
    }

    /** Logical left shift by `bits` (bits may exceed 64). */
    constexpr BigInt
    shl(std::size_t bits) const
    {
        BigInt r;
        std::size_t limb_shift = bits / 64;
        std::size_t bit_shift = bits % 64;
        for (std::size_t i = N; i-- > 0;) {
            std::uint64_t v = 0;
            if (i >= limb_shift) {
                v = limbs[i - limb_shift] << bit_shift;
                if (bit_shift != 0 && i > limb_shift)
                    v |= limbs[i - limb_shift - 1] >> (64 - bit_shift);
            }
            r.limbs[i] = v;
        }
        return r;
    }

    /** Logical right shift by `bits` (bits may exceed 64). */
    constexpr BigInt
    shr(std::size_t bits) const
    {
        BigInt r;
        std::size_t limb_shift = bits / 64;
        std::size_t bit_shift = bits % 64;
        for (std::size_t i = 0; i < N; ++i) {
            std::uint64_t v = 0;
            if (i + limb_shift < N) {
                v = limbs[i + limb_shift] >> bit_shift;
                if (bit_shift != 0 && i + limb_shift + 1 < N)
                    v |= limbs[i + limb_shift + 1] << (64 - bit_shift);
            }
            r.limbs[i] = v;
        }
        return r;
    }

    /**
     * Extract a window of `width` bits starting at bit `lo`
     * (width <= 64). Used by every windowed MSM algorithm.
     */
    constexpr std::uint64_t
    bits(std::size_t lo, std::size_t width) const
    {
        std::uint64_t out = 0;
        for (std::size_t i = 0; i < width; ++i)
            if (bit(lo + i))
                out |= std::uint64_t(1) << i;
        return out;
    }

    /** Uniform random value over the full 64*N-bit range. */
    template <typename Rng>
    static BigInt
    random(Rng &rng)
    {
        std::uniform_int_distribution<std::uint64_t> dist;
        BigInt r;
        for (std::size_t i = 0; i < N; ++i)
            r.limbs[i] = dist(rng);
        return r;
    }

    /** Truncate or zero-extend to M limbs. */
    template <std::size_t M>
    constexpr BigInt<M>
    resize() const
    {
        BigInt<M> r;
        for (std::size_t i = 0; i < (M < N ? M : N); ++i)
            r.limbs[i] = limbs[i];
        return r;
    }
};

} // namespace gzkp::ff

#endif // GZKP_FF_BIGINT_HH
