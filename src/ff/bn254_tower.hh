/**
 * @file
 * BN254 (ALT-BN128) instantiation of the extension tower.
 *
 *   Fp2  = Fq[u] / (u^2 + 1)
 *   Fp6  = Fp2[v] / (v^3 - (9 + u))
 *   Fp12 = Fp6[w] / (w^2 - v)
 */

#ifndef GZKP_FF_BN254_TOWER_HH
#define GZKP_FF_BN254_TOWER_HH

#include "ff/field_tags.hh"
#include "ff/tower.hh"

namespace gzkp::ff {

struct Bn254Fp2Cfg {
    using Fq = Bn254Fq;
    static Fq
    beta()
    {
        static const Fq b = -Fq::one();
        return b;
    }
};
using Bn254Fp2 = Fp2T<Bn254Fp2Cfg>;

struct Bn254Fp6Cfg {
    using Fp2 = Bn254Fp2;
    static Fp2
    xi()
    {
        static const Fp2 x(Bn254Fq::fromUint64(9), Bn254Fq::one());
        return x;
    }
};
using Bn254Fp6 = Fp6T<Bn254Fp6Cfg>;

struct Bn254Fp12Cfg {
    using Fp6 = Bn254Fp6;
};
using Bn254Fp12 = Fp12T<Bn254Fp12Cfg>;

} // namespace gzkp::ff

#endif // GZKP_FF_BN254_TOWER_HH
