/**
 * @file
 * Extension-field tower Fp2 / Fp6 / Fp12.
 *
 * Used for the BN254 G2 group (coordinates in Fp2) and the optimal
 * ate pairing (Miller loop values in Fp12) that realises the Groth16
 * verifier. Tower shape is the standard 2-3-2:
 *
 *   Fp2  = Fp [u] / (u^2 - beta)      (beta = -1 for BN254)
 *   Fp6  = Fp2[v] / (v^3 - xi)        (xi = 9 + u for BN254)
 *   Fp12 = Fp6[w] / (w^2 - v)
 *
 * The tower is parameterised by a config type so tests can also
 * instantiate small sanity towers.
 */

#ifndef GZKP_FF_TOWER_HH
#define GZKP_FF_TOWER_HH

#include <cstdint>
#include <stdexcept>

#include "ff/bigint.hh"

namespace gzkp::ff {

/**
 * Quadratic extension Fp2 = Fp[u]/(u^2 - beta).
 *
 * @tparam Cfg provides `using Fq = ...;` and
 *         `static Fq beta()` (the quadratic non-residue).
 */
template <typename Cfg>
class Fp2T
{
  public:
    using Fq = typename Cfg::Fq;

    /** Total 64-bit words per element (size/cost modeling). */
    static constexpr std::size_t kLimbs = 2 * Fq::kLimbs;

    Fq c0, c1;

    Fp2T() : c0(Fq::zero()), c1(Fq::zero()) {}
    Fp2T(const Fq &a, const Fq &b) : c0(a), c1(b) {}

    static Fp2T zero() { return Fp2T(); }
    static Fp2T one() { return Fp2T(Fq::one(), Fq::zero()); }

    bool isZero() const { return c0.isZero() && c1.isZero(); }
    bool operator==(const Fp2T &o) const
    {
        return c0 == o.c0 && c1 == o.c1;
    }
    bool operator!=(const Fp2T &o) const { return !(*this == o); }

    Fp2T operator+(const Fp2T &o) const
    {
        return Fp2T(c0 + o.c0, c1 + o.c1);
    }
    Fp2T operator-(const Fp2T &o) const
    {
        return Fp2T(c0 - o.c0, c1 - o.c1);
    }
    Fp2T operator-() const { return Fp2T(-c0, -c1); }

    /** Karatsuba multiplication: 3 base-field multiplies. */
    Fp2T
    operator*(const Fp2T &o) const
    {
        Fq a = c0 * o.c0;
        Fq b = c1 * o.c1;
        Fq sum = (c0 + c1) * (o.c0 + o.c1);
        return Fp2T(a + Cfg::beta() * b, sum - a - b);
    }

    Fp2T &operator+=(const Fp2T &o) { return *this = *this + o; }
    Fp2T &operator-=(const Fp2T &o) { return *this = *this - o; }
    Fp2T &operator*=(const Fp2T &o) { return *this = *this * o; }

    Fp2T
    squared() const
    {
        // Complex squaring: 2 base multiplies.
        Fq ab = c0 * c1;
        Fq t = (c0 + c1) * (c0 + Cfg::beta() * c1);
        return Fp2T(t - ab - Cfg::beta() * ab, ab.dbl());
    }

    Fp2T dbl() const { return *this + *this; }

    /** Multiply by a base-field scalar. */
    Fp2T
    scale(const Fq &s) const
    {
        return Fp2T(c0 * s, c1 * s);
    }

    /** Conjugate: the Frobenius map of a quadratic extension. */
    Fp2T conjugate() const { return Fp2T(c0, -c1); }

    Fp2T
    inverse() const
    {
        // 1/(c0 + c1 u) = (c0 - c1 u) / (c0^2 - beta c1^2)
        Fq norm = c0.squared() - Cfg::beta() * c1.squared();
        Fq ninv = norm.inverse();
        return Fp2T(c0 * ninv, -(c1 * ninv));
    }

    template <std::size_t M>
    Fp2T
    pow(const BigInt<M> &e) const
    {
        Fp2T result = one();
        for (std::size_t i = e.numBits(); i-- > 0;) {
            result = result.squared();
            if (e.bit(i))
                result *= *this;
        }
        return result;
    }

    /** Field norm N(a) = a * a^p = c0^2 - beta * c1^2, in Fq. */
    Fq
    norm() const
    {
        return c0.squared() - Cfg::beta() * c1.squared();
    }

    /**
     * Quadratic character: +1 residue, -1 non-residue, 0 for zero.
     * a is a square in Fp2 iff its norm is a square in Fp (the norm
     * map is surjective onto Fq* with kernel of even order).
     */
    int
    legendre() const
    {
        if (isZero())
            return 0;
        // norm() is zero only for zero (beta is a non-residue).
        return norm().legendre();
    }

    /**
     * Square root by the complex method (requires Fq's p = 3 mod 4,
     * true for all our base fields). With delta = sqrt(N(a)), one of
     * t = (c0 +- delta)/2 is a residue; then r = sqrt(t) + u *
     * c1/(2 sqrt(t)) satisfies r^2 = a. Throws std::domain_error for
     * non-residues.
     */
    Fp2T
    sqrt() const
    {
        if (isZero())
            return zero();
        if (c1.isZero()) {
            // Base-field element: sqrt in Fq if c0 is a residue,
            // else sqrt(c0/beta) * u (beta is a non-residue, so
            // exactly one of the two cases applies).
            if (c0.legendre() == 1)
                return Fp2T(c0.sqrt(), Fq::zero());
            return Fp2T(Fq::zero(),
                        (c0 * Cfg::beta().inverse()).sqrt());
        }
        Fq delta;
        try {
            delta = norm().sqrt();
        } catch (const std::domain_error &) {
            throw std::domain_error(
                "Fp2::sqrt: not a quadratic residue");
        }
        Fq half = (Fq::one() + Fq::one()).inverse();
        Fq t = (c0 + delta) * half;
        if (t.legendre() != 1)
            t = (c0 - delta) * half;
        Fq r0;
        try {
            r0 = t.sqrt();
        } catch (const std::domain_error &) {
            throw std::domain_error(
                "Fp2::sqrt: not a quadratic residue");
        }
        Fp2T r(r0, c1 * (r0 + r0).inverse());
        if (r.squared() != *this)
            throw std::domain_error(
                "Fp2::sqrt: not a quadratic residue");
        return r;
    }

    template <typename Rng>
    static Fp2T
    random(Rng &rng)
    {
        return Fp2T(Fq::random(rng), Fq::random(rng));
    }
};

/**
 * Cubic extension Fp6 = Fp2[v]/(v^3 - xi).
 *
 * @tparam Cfg provides `using Fp2 = ...;` and `static Fp2 xi()`.
 */
template <typename Cfg>
class Fp6T
{
  public:
    using Fp2 = typename Cfg::Fp2;

    Fp2 c0, c1, c2;

    Fp6T() = default;
    Fp6T(const Fp2 &a, const Fp2 &b, const Fp2 &c) : c0(a), c1(b), c2(c) {}

    static Fp6T zero() { return Fp6T(); }
    static Fp6T one()
    {
        return Fp6T(Fp2::one(), Fp2::zero(), Fp2::zero());
    }

    bool isZero() const
    {
        return c0.isZero() && c1.isZero() && c2.isZero();
    }
    bool operator==(const Fp6T &o) const
    {
        return c0 == o.c0 && c1 == o.c1 && c2 == o.c2;
    }
    bool operator!=(const Fp6T &o) const { return !(*this == o); }

    Fp6T operator+(const Fp6T &o) const
    {
        return Fp6T(c0 + o.c0, c1 + o.c1, c2 + o.c2);
    }
    Fp6T operator-(const Fp6T &o) const
    {
        return Fp6T(c0 - o.c0, c1 - o.c1, c2 - o.c2);
    }
    Fp6T operator-() const { return Fp6T(-c0, -c1, -c2); }

    /** Toom-Cook-ish schoolbook with xi reductions (6 Fp2 muls). */
    Fp6T
    operator*(const Fp6T &o) const
    {
        Fp2 a0 = c0 * o.c0;
        Fp2 a1 = c1 * o.c1;
        Fp2 a2 = c2 * o.c2;
        Fp2 t0 = (c1 + c2) * (o.c1 + o.c2) - a1 - a2; // c1 o2 + c2 o1
        Fp2 t1 = (c0 + c1) * (o.c0 + o.c1) - a0 - a1; // c0 o1 + c1 o0
        Fp2 t2 = (c0 + c2) * (o.c0 + o.c2) - a0 - a2; // c0 o2 + c2 o0
        return Fp6T(a0 + Cfg::xi() * t0,
                    t1 + Cfg::xi() * a2,
                    t2 + a1);
    }

    Fp6T &operator+=(const Fp6T &o) { return *this = *this + o; }
    Fp6T &operator-=(const Fp6T &o) { return *this = *this - o; }
    Fp6T &operator*=(const Fp6T &o) { return *this = *this * o; }

    Fp6T squared() const { return *this * *this; }

    /** Multiply by v: (c0, c1, c2) -> (xi c2, c0, c1). */
    Fp6T
    mulByV() const
    {
        return Fp6T(Cfg::xi() * c2, c0, c1);
    }

    Fp6T
    scale(const Fp2 &s) const
    {
        return Fp6T(c0 * s, c1 * s, c2 * s);
    }

    Fp6T
    inverse() const
    {
        // Standard cubic-extension inversion (see Devegili et al.).
        Fp2 t0 = c0.squared() - Cfg::xi() * (c1 * c2);
        Fp2 t1 = Cfg::xi() * c2.squared() - c0 * c1;
        Fp2 t2 = c1.squared() - c0 * c2;
        Fp2 denom = c0 * t0 + Cfg::xi() * (c2 * t1) + Cfg::xi() * (c1 * t2);
        Fp2 dinv = denom.inverse();
        return Fp6T(t0 * dinv, t1 * dinv, t2 * dinv);
    }

    template <typename Rng>
    static Fp6T
    random(Rng &rng)
    {
        return Fp6T(Fp2::random(rng), Fp2::random(rng), Fp2::random(rng));
    }
};

/**
 * Quadratic extension Fp12 = Fp6[w]/(w^2 - v).
 *
 * @tparam Cfg provides `using Fp6 = ...;`.
 */
template <typename Cfg>
class Fp12T
{
  public:
    using Fp6 = typename Cfg::Fp6;
    using Fp2 = typename Fp6::Fp2;

    Fp6 c0, c1;

    Fp12T() = default;
    Fp12T(const Fp6 &a, const Fp6 &b) : c0(a), c1(b) {}

    static Fp12T zero() { return Fp12T(); }
    static Fp12T one() { return Fp12T(Fp6::one(), Fp6::zero()); }

    bool isZero() const { return c0.isZero() && c1.isZero(); }
    bool operator==(const Fp12T &o) const
    {
        return c0 == o.c0 && c1 == o.c1;
    }
    bool operator!=(const Fp12T &o) const { return !(*this == o); }

    Fp12T operator+(const Fp12T &o) const
    {
        return Fp12T(c0 + o.c0, c1 + o.c1);
    }
    Fp12T operator-(const Fp12T &o) const
    {
        return Fp12T(c0 - o.c0, c1 - o.c1);
    }

    Fp12T
    operator*(const Fp12T &o) const
    {
        Fp6 a = c0 * o.c0;
        Fp6 b = c1 * o.c1;
        Fp6 sum = (c0 + c1) * (o.c0 + o.c1);
        return Fp12T(a + b.mulByV(), sum - a - b);
    }

    Fp12T &operator*=(const Fp12T &o) { return *this = *this * o; }

    Fp12T
    squared() const
    {
        Fp6 ab = c0 * c1;
        Fp6 t = (c0 + c1) * (c0 + c1.mulByV());
        return Fp12T(t - ab - ab.mulByV(), ab + ab);
    }

    /** Conjugate over Fp6 (the "easy" unitary inverse). */
    Fp12T conjugate() const { return Fp12T(c0, -c1); }

    Fp12T
    inverse() const
    {
        Fp6 denom = c0.squared() - c1.squared().mulByV();
        Fp6 dinv = denom.inverse();
        return Fp12T(c0 * dinv, -(c1 * dinv));
    }

    template <std::size_t M>
    Fp12T
    pow(const BigInt<M> &e) const
    {
        Fp12T result = one();
        for (std::size_t i = e.numBits(); i-- > 0;) {
            result = result.squared();
            if (e.bit(i))
                result *= *this;
        }
        return result;
    }

    template <typename Rng>
    static Fp12T
    random(Rng &rng)
    {
        return Fp12T(Fp6::random(rng), Fp6::random(rng));
    }
};

} // namespace gzkp::ff

#endif // GZKP_FF_TOWER_HH
