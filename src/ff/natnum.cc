#include "ff/natnum.hh"

#include <algorithm>
#include <stdexcept>

namespace gzkp::ff {

NatNum::NatNum(std::uint64_t v)
{
    if (v != 0)
        limbs_.push_back(v);
}

void
NatNum::trim()
{
    while (!limbs_.empty() && limbs_.back() == 0)
        limbs_.pop_back();
}

NatNum
NatNum::fromDec(std::string_view s)
{
    if (s.empty())
        throw std::invalid_argument("NatNum::fromDec: empty string");
    NatNum r;
    NatNum ten(10);
    for (char c : s) {
        if (c < '0' || c > '9')
            throw std::invalid_argument("NatNum::fromDec: bad digit");
        r = r * ten + NatNum(std::uint64_t(c - '0'));
    }
    return r;
}

NatNum
NatNum::fromHex(std::string_view s)
{
    if (s.size() >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X'))
        s.remove_prefix(2);
    if (s.empty())
        throw std::invalid_argument("NatNum::fromHex: empty string");
    NatNum r;
    r.limbs_.assign((s.size() * 4 + 63) / 64, 0);
    for (std::size_t i = 0; i < s.size(); ++i) {
        char c = s[s.size() - 1 - i];
        std::uint64_t v;
        if (c >= '0' && c <= '9') v = c - '0';
        else if (c >= 'a' && c <= 'f') v = 10 + (c - 'a');
        else if (c >= 'A' && c <= 'F') v = 10 + (c - 'A');
        else
            throw std::invalid_argument("NatNum::fromHex: bad digit");
        r.limbs_[i / 16] |= v << ((i % 16) * 4);
    }
    r.trim();
    return r;
}

std::string
NatNum::toHex() const
{
    if (isZero())
        return "0x0";
    static const char *digits = "0123456789abcdef";
    std::string out;
    bool started = false;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        for (int shift = 60; shift >= 0; shift -= 4) {
            unsigned d = (limbs_[i] >> shift) & 0xf;
            if (d != 0)
                started = true;
            if (started)
                out.push_back(digits[d]);
        }
    }
    return "0x" + out;
}

std::string
NatNum::toDec() const
{
    if (isZero())
        return "0";
    // Repeated division by 10^19 (largest power of ten in a limb).
    const std::uint64_t chunk = 10000000000000000000ull;
    NatNum v = *this;
    std::string out;
    while (!v.isZero()) {
        // Divide v by `chunk` in place; collect the remainder.
        uint128 rem = 0;
        for (std::size_t i = v.limbs_.size(); i-- > 0;) {
            uint128 cur = (rem << 64) | v.limbs_[i];
            v.limbs_[i] = std::uint64_t(cur / chunk);
            rem = cur % chunk;
        }
        v.trim();
        std::uint64_t r = std::uint64_t(rem);
        for (int d = 0; d < 19; ++d) {
            out.push_back(char('0' + r % 10));
            r /= 10;
        }
    }
    while (out.size() > 1 && out.back() == '0')
        out.pop_back();
    std::reverse(out.begin(), out.end());
    return out;
}

std::size_t
NatNum::numBits() const
{
    if (limbs_.empty())
        return 0;
    std::uint64_t top = limbs_.back();
    std::size_t b = 0;
    while (top != 0) {
        top >>= 1;
        ++b;
    }
    return (limbs_.size() - 1) * 64 + b;
}

bool
NatNum::bit(std::size_t i) const
{
    std::size_t limb = i / 64;
    if (limb >= limbs_.size())
        return false;
    return (limbs_[limb] >> (i % 64)) & 1;
}

int
NatNum::cmp(const NatNum &o) const
{
    if (limbs_.size() != o.limbs_.size())
        return limbs_.size() < o.limbs_.size() ? -1 : 1;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        if (limbs_[i] < o.limbs_[i])
            return -1;
        if (limbs_[i] > o.limbs_[i])
            return 1;
    }
    return 0;
}

NatNum
NatNum::operator+(const NatNum &o) const
{
    NatNum r;
    std::size_t n = std::max(limbs_.size(), o.limbs_.size());
    r.limbs_.assign(n + 1, 0);
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        uint128 t = uint128(limb(i)) + o.limb(i) + carry;
        r.limbs_[i] = std::uint64_t(t);
        carry = std::uint64_t(t >> 64);
    }
    r.limbs_[n] = carry;
    r.trim();
    return r;
}

NatNum
NatNum::operator-(const NatNum &o) const
{
    if (*this < o)
        throw std::underflow_error("NatNum::operator-: negative result");
    NatNum r;
    r.limbs_.assign(limbs_.size(), 0);
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        uint128 t = uint128(limbs_[i]) - o.limb(i) - borrow;
        r.limbs_[i] = std::uint64_t(t);
        borrow = (t >> 64) ? 1 : 0;
    }
    r.trim();
    return r;
}

NatNum
NatNum::operator*(const NatNum &o) const
{
    if (isZero() || o.isZero())
        return NatNum();
    NatNum r;
    r.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        std::uint64_t carry = 0;
        for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
            uint128 t = uint128(limbs_[i]) * o.limbs_[j] +
                r.limbs_[i + j] + carry;
            r.limbs_[i + j] = std::uint64_t(t);
            carry = std::uint64_t(t >> 64);
        }
        r.limbs_[i + o.limbs_.size()] += carry;
    }
    r.trim();
    return r;
}

NatNum
NatNum::shl(std::size_t bits) const
{
    // Allocation guard: the result buffer is sized from `bits` before
    // any arithmetic, so a corrupt or hostile shift count would turn
    // into an unbounded allocation. Nothing in this codebase shifts
    // past a few thousand bits (modulus setup); 2^24 is generous.
    if (bits > (std::size_t(1) << 24))
        throw std::invalid_argument("NatNum::shl: shift too large");
    if (isZero())
        return NatNum();
    std::size_t limb_shift = bits / 64;
    std::size_t bit_shift = bits % 64;
    NatNum r;
    r.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        r.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
        if (bit_shift != 0)
            r.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
    r.trim();
    return r;
}

NatNum
NatNum::shr(std::size_t bits) const
{
    std::size_t limb_shift = bits / 64;
    std::size_t bit_shift = bits % 64;
    if (limb_shift >= limbs_.size())
        return NatNum();
    NatNum r;
    r.limbs_.assign(limbs_.size() - limb_shift, 0);
    for (std::size_t i = 0; i < r.limbs_.size(); ++i) {
        r.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
        if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size())
            r.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
    r.trim();
    return r;
}

NatNum
NatNum::divmod(const NatNum &divisor, NatNum &rem) const
{
    if (divisor.isZero())
        throw std::domain_error("NatNum::divmod: division by zero");
    NatNum q;
    NatNum r;
    if (*this < divisor) {
        rem = *this;
        return q;
    }
    // Binary long division: one-time setup work only, so O(bits^2)
    // shift-subtract is perfectly adequate here.
    std::size_t shift = numBits() - divisor.numBits();
    NatNum d = divisor.shl(shift);
    r = *this;
    q.limbs_.assign(shift / 64 + 1, 0);
    for (std::size_t i = shift + 1; i-- > 0;) {
        if (d <= r) {
            r = r - d;
            q.limbs_[i / 64] |= std::uint64_t(1) << (i % 64);
        }
        d = d.shr(1);
    }
    q.trim();
    rem = r;
    return q;
}

NatNum
NatNum::operator/(const NatNum &o) const
{
    NatNum rem;
    return divmod(o, rem);
}

NatNum
NatNum::operator%(const NatNum &o) const
{
    NatNum rem;
    divmod(o, rem);
    return rem;
}

} // namespace gzkp::ff
