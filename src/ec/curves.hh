/**
 * @file
 * Curve configurations for the three families in the paper's
 * Table 1: ALT-BN128 (G1 and G2), BLS12-381 (G1), MNT4753-sim (G1).
 *
 * All generator constants for BN254 and BLS12-381 are the standard
 * published values (validated against independent computation; the
 * unit tests additionally assert r * G == identity). MNT4753-sim is
 * the synthetic 753-bit configuration described in DESIGN.md.
 */

#ifndef GZKP_EC_CURVES_HH
#define GZKP_EC_CURVES_HH

#include "ec/point.hh"
#include "ff/bn254_tower.hh"
#include "ff/field_tags.hh"

namespace gzkp::ec {

/** ALT-BN128 G1: y^2 = x^3 + 3 over Fq, generator (1, 2). */
struct Bn254G1Cfg {
    using Field = ff::Bn254Fq;
    using Scalar = ff::Bn254Fr;
    static Field a() { return Field::zero(); }
    static Field b() { return Field::fromUint64(3); }
    static Field genX() { return Field::one(); }
    static Field genY() { return Field::fromUint64(2); }
    static const char *name() { return "bn254.G1"; }
};
using Bn254G1 = ECPoint<Bn254G1Cfg>;
using Bn254G1Affine = AffinePoint<Bn254G1Cfg>;

/**
 * ALT-BN128 G2: y^2 = x^3 + 3/(9+u) over Fp2, order-r subgroup
 * generator from the standard (Ethereum precompile) constants.
 */
struct Bn254G2Cfg {
    using Field = ff::Bn254Fp2;
    using Scalar = ff::Bn254Fr;
    static Field a() { return Field::zero(); }
    static Field
    b()
    {
        static const Field v = Field(ff::Bn254Fq::fromUint64(3),
                                     ff::Bn254Fq::zero()) *
            ff::Bn254Fp6Cfg::xi().inverse();
        return v;
    }
    static Field
    genX()
    {
        static const Field v(
            ff::Bn254Fq::fromHex("0x1800deef121f1e76426a00665e5c44796"
                                 "74322d4f75edadd46debd5cd992f6ed"),
            ff::Bn254Fq::fromHex("0x198e9393920d483a7260bfb731fb5d25f"
                                 "1aa493335a9e71297e485b7aef312c2"));
        return v;
    }
    static Field
    genY()
    {
        static const Field v(
            ff::Bn254Fq::fromHex("0x12c85ea5db8c6deb4aab71808dcb408fe"
                                 "3d1e7690c43d37b4ce6cc0166fa7daa"),
            ff::Bn254Fq::fromHex("0x90689d0585ff075ec9e99ad690c3395b"
                                 "c4b313370b38ef355acdadcd122975b"));
        return v;
    }
    static const char *name() { return "bn254.G2"; }
};
using Bn254G2 = ECPoint<Bn254G2Cfg>;
using Bn254G2Affine = AffinePoint<Bn254G2Cfg>;

/** BLS12-381 G1: y^2 = x^3 + 4 over Fq. */
struct Bls381G1Cfg {
    using Field = ff::Bls381Fq;
    using Scalar = ff::Bls381Fr;
    static Field a() { return Field::zero(); }
    static Field b() { return Field::fromUint64(4); }
    static Field
    genX()
    {
        static const Field v = Field::fromHex(
            "0x17f1d3a73197d7942695638c4fa9ac0fc3688c4f9774b905"
            "a14e3a3f171bac586c55e83ff97a1aeffb3af00adb22c6bb");
        return v;
    }
    static Field
    genY()
    {
        static const Field v = Field::fromHex(
            "0x08b3f481e3aaa0f1a09e30ed741d8ae4fcf5e095d5d00af6"
            "00db18cb2c04b3edd03cc744a2888ae40caa232946c5e7e1");
        return v;
    }
    static const char *name() { return "bls12_381.G1"; }
};
using Bls381G1 = ECPoint<Bls381G1Cfg>;
using Bls381G1Affine = AffinePoint<Bls381G1Cfg>;

/**
 * MNT4753-sim G1: y^2 = x^3 + 2x + 5 over the synthetic 753-bit q.
 * Exercises the 12-limb (753-bit) code paths of every kernel; used
 * for timing-shape experiments only (see DESIGN.md substitutions).
 */
struct Mnt4753G1Cfg {
    using Field = ff::Mnt4753Fq;
    using Scalar = ff::Mnt4753Fr;
    static Field a() { return Field::fromUint64(2); }
    static Field b() { return Field::fromUint64(5); }
    static Field genX() { return Field::fromUint64(4); }
    static Field
    genY()
    {
        static const Field v = Field::fromHex(
            "0x10b71bd731e7406378f7ed0e6068be13011f0f6397956143a4f5cdc2"
            "c0db98cc4bf24a2d3bc32780cd6a582d89f480586368fe93b539e2c253"
            "54b6530c0b85745b8b5957f523c0153be76014431f02e9b5a86101de74"
            "b12bf2851d56e197b");
        return v;
    }
    static const char *name() { return "mnt4753_sim.G1"; }
};
using Mnt4753G1 = ECPoint<Mnt4753G1Cfg>;
using Mnt4753G1Affine = AffinePoint<Mnt4753G1Cfg>;

} // namespace gzkp::ec

#endif // GZKP_EC_CURVES_HH
