/**
 * @file
 * Windowed non-adjacent-form (wNAF) scalar multiplication.
 *
 * PMUL with ~l/(w+1) additions instead of l/2, by recoding the
 * scalar into signed odd digits (negation is free on elliptic
 * curves). Used where a single large PMUL matters (setup, verifier
 * IC accumulation); the MSM module's bucket methods remain the tool
 * for many-point workloads.
 */

#ifndef GZKP_EC_WNAF_HH
#define GZKP_EC_WNAF_HH

#include <cstdint>
#include <vector>

#include "ec/point.hh"

namespace gzkp::ec {

/**
 * Recode a scalar into wNAF digits (least significant first).
 * Each digit is 0 or odd with |d| < 2^w; nonzero digits are
 * separated by at least w zeros.
 */
template <std::size_t N>
std::vector<int>
wnafRecode(const gzkp::ff::BigInt<N> &k, std::size_t w)
{
    std::vector<int> digits;
    gzkp::ff::BigInt<N> v = k;
    const std::uint64_t window = std::uint64_t(1) << (w + 1);
    while (!v.isZero()) {
        int d = 0;
        if (v.isOdd()) {
            std::uint64_t mods = v.limbs[0] & (window - 1);
            if (mods >= window / 2) {
                // Negative digit: d = mods - 2^(w+1); add back.
                d = int(mods) - int(window);
                gzkp::ff::BigInt<N> add =
                    gzkp::ff::BigInt<N>::fromUint64(
                        std::uint64_t(-d));
                gzkp::ff::BigInt<N>::add(v, add, v);
            } else {
                d = int(mods);
                gzkp::ff::BigInt<N> sub =
                    gzkp::ff::BigInt<N>::fromUint64(mods);
                gzkp::ff::BigInt<N>::sub(v, sub, v);
            }
        }
        digits.push_back(d);
        v = v.shr(1);
    }
    return digits;
}

/** wNAF scalar multiplication (window w, default 4). */
template <typename Cfg, std::size_t N>
ECPoint<Cfg>
wnafMul(const ECPoint<Cfg> &p, const gzkp::ff::BigInt<N> &k,
        std::size_t w = 4)
{
    if (k.isZero() || p.isZero())
        return ECPoint<Cfg>();

    // Precompute odd multiples P, 3P, ..., (2^w - 1)P.
    std::size_t count = std::size_t(1) << (w - 1);
    std::vector<ECPoint<Cfg>> table(count);
    table[0] = p;
    ECPoint<Cfg> twice = p.dbl();
    for (std::size_t i = 1; i < count; ++i)
        table[i] = table[i - 1] + twice;
    auto aff = batchToAffine<Cfg>(table);

    auto digits = wnafRecode(k, w);
    ECPoint<Cfg> acc;
    for (std::size_t i = digits.size(); i-- > 0;) {
        acc = acc.dbl();
        int d = digits[i];
        if (d > 0)
            acc = acc.addMixed(aff[(d - 1) / 2]);
        else if (d < 0)
            acc = acc.addMixed(aff[(-d - 1) / 2].negate());
    }
    return acc;
}

template <typename Cfg>
ECPoint<Cfg>
wnafMul(const ECPoint<Cfg> &p, const typename Cfg::Scalar &k,
        std::size_t w = 4)
{
    return wnafMul(p, k.toBigInt(), w);
}

} // namespace gzkp::ec

#endif // GZKP_EC_WNAF_HH
