/**
 * @file
 * GLV endomorphism scalar decomposition (BN254 G1).
 *
 * BN curves carry the cheap curve endomorphism phi(x, y) = (beta*x, y)
 * with beta a primitive cube root of unity in Fq; on the order-r
 * subgroup phi acts as multiplication by lambda, a cube root of unity
 * in Fr. Splitting a 254-bit scalar k into k1 + lambda * k2 with
 * |k1|, |k2| ~ sqrt(r) lets every windowed MSM digitize half-length
 * scalars over the doubled point set {P, phi(P)} -- the window count
 * halves while the insertion count stays put, so the Horner/doubling
 * and bucket-reduction phases shrink roughly 2x.
 *
 * The lattice L = {(a, b) : a + lambda*b = 0 mod r} has the short
 * basis (derived from the BN parameter u, verified at startup):
 *
 *     v1 = (6u^2 + 2u,      6u^2 + 4u + 1)
 *     v2 = (6u^2 + 4u + 1,  2u + 1)          det(v1, v2) = -r
 *
 * Babai round-off against that basis gives the decomposition: the
 * lattice coordinates of (k, 0) are c1 = -k*b2/r and c2 = k*b1/r
 * (det = -r), so with n1 ~ floor(k*b2/r) and n2 ~ floor(k*b1/r) the
 * residual is k1 = k + n1*a1 - n2*a2, k2 = n1*b1 - n2*b2, computed in
 * Fr field arithmetic. The per-scalar work is division-free: the
 * precomputed reciprocals g_i = floor(2^384 * b_i / r) turn each
 * quotient into a mulWide and a shift, off by at most 2 from the true
 * floor (absorbed by the size margin). A residual with more than
 * kScalarBits bits encodes a negative component as r - |value|.
 *
 * Curves without a specialization (BN254 G2 over Fp2, BLS12-381,
 * MNT4753-sim) keep Glv<Cfg>::kEnabled == false and are untouched by
 * every GLV-aware code path.
 */

#ifndef GZKP_EC_GLV_HH
#define GZKP_EC_GLV_HH

#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>

#include "ec/curves.hh"
#include "ec/point.hh"
#include "ff/bigint.hh"

namespace gzkp::ec {

namespace glv_detail {

/** Binary long division: floor(num / den), den != 0. One-time use. */
template <std::size_t N>
inline ff::BigInt<N>
divFloor(const ff::BigInt<N> &num, const ff::BigInt<N> &den)
{
    if (den.isZero())
        throw std::logic_error("glv::divFloor: division by zero");
    ff::BigInt<N> q, rem;
    for (std::size_t i = N * 64; i-- > 0;) {
        rem = rem.shl(1);
        if (num.bit(i))
            rem.limbs[0] |= 1;
        if (!(rem < den)) {
            ff::BigInt<N>::sub(rem, den, rem);
            q.setBit(i);
        }
    }
    return q;
}

/** floor(x / d) for a small divisor d (d != 0). */
template <std::size_t N>
inline ff::BigInt<N>
divSmall(const ff::BigInt<N> &x, std::uint64_t d)
{
    ff::BigInt<N> q;
    ff::uint128 rem = 0;
    for (std::size_t i = N; i-- > 0;) {
        ff::uint128 cur = (rem << 64) | x.limbs[i];
        q.limbs[i] = std::uint64_t(cur / d);
        rem = cur % d;
    }
    return q;
}

} // namespace glv_detail

/**
 * GLV trait: the primary template marks a curve as not GLV-capable.
 * MSM code gates every GLV path behind `if constexpr
 * (Glv<Cfg>::kEnabled)`, so nothing below is instantiated for plain
 * curves.
 */
template <typename Cfg>
struct Glv {
    static constexpr bool kEnabled = false;
    // Referenced (never selected) from runtime branches that the
    // optimizer cannot fold away; 0 keeps such code well-formed.
    static constexpr std::size_t kScalarBits = 0;
};

/** BN254 G1: the only GLV-capable curve in this repo's Table 1 set. */
template <>
struct Glv<Bn254G1Cfg> {
    static constexpr bool kEnabled = true;

    using Cfg = Bn254G1Cfg;
    using Field = Cfg::Field;   // Fq
    using Scalar = Cfg::Scalar; // Fr
    using Repr = Scalar::Repr;  // BigInt<4>
    using Affine = AffinePoint<Cfg>;
    using Wide = ff::BigInt<8>;

    /**
     * Bit bound on |k1| and |k2|: floor rounding plus the reciprocal
     * slack keeps both below 3*(a1 + a2) < 2^130; 132 leaves margin
     * and is what every GLV window digitization loops over.
     */
    static constexpr std::size_t kScalarBits = 132;

    /** The BN254 curve parameter u (x in the BN polynomial family). */
    static constexpr std::uint64_t kBnU = 4965661367192848881ull;

    struct Params {
        Field beta;          //!< cube root of unity in Fq
        Scalar lambda;       //!< cube root of unity in Fr
        Repr lambdaRepr;
        Repr a1, b1, a2, b2; //!< short lattice basis (all positive)
        Scalar a1F, b1F, a2F, b2F;
        Wide g1, g2;         //!< floor(2^384 * b_i / r)
    };

    /** One signed half-scalar of a decomposition. */
    struct Decomposed {
        Repr k1, k2;
        bool neg1 = false, neg2 = false;
    };

    static const Params &
    params()
    {
        static const Params p = build();
        return p;
    }

    /** phi(x, y) = (beta * x, y); one field multiplication. */
    static Affine
    endo(const Affine &p)
    {
        if (p.infinity)
            return p;
        return Affine(params().beta * p.x, p.y);
    }

    /** Split k = k1 + lambda * k2 (mod r) with short signed halves. */
    static Decomposed
    decompose(const Scalar &k)
    {
        const Params &p = params();
        Repr kr = k.toBigInt();
        // Babai coefficients via the shifted reciprocals: v1's
        // multiplier comes from b2 and v2's from b1 (the inverse of
        // the basis matrix swaps the b column).
        Wide kw = kr.resize<8>();
        Repr n1 = Wide::mulWide(kw, p.g2).shr(384).resize<4>();
        Repr n2 = Wide::mulWide(kw, p.g1).shr(384).resize<4>();

        // Residual in Fr: both n_i and the basis entries are < r.
        Scalar n1F = Scalar::fromBigInt(n1);
        Scalar n2F = Scalar::fromBigInt(n2);
        Scalar k1F = k + n1F * p.a1F - n2F * p.a2F;
        Scalar k2F = n1F * p.b1F - n2F * p.b2F;

        Decomposed d;
        toSigned(k1F, d.k1, d.neg1);
        toSigned(k2F, d.k2, d.neg2);
        return d;
    }

  private:
    /** Map an Fr residual to (magnitude, sign) with a short magnitude. */
    static void
    toSigned(const Scalar &v, Repr &mag, bool &neg)
    {
        Repr repr = v.toBigInt();
        neg = repr.numBits() > kScalarBits;
        if (neg)
            Repr::sub(Scalar::modulus(), repr, mag);
        else
            mag = repr;
        if (mag.numBits() > kScalarBits)
            throw std::logic_error(
                "Glv::decompose: component exceeds kScalarBits");
    }

    static Repr
    mulSmall(const Repr &x, std::uint64_t c)
    {
        return Repr::mulWide(x, Repr::fromUint64(c)).resize<4>();
    }

    static Params
    build()
    {
        Params p;
        Repr u = Repr::fromUint64(kBnU);
        Repr u2 = Repr::mulWide(u, u).resize<4>();
        Repr u3 = Repr::mulWide(u2, u).resize<4>();

        auto sum = [](std::initializer_list<Repr> parts) {
            Repr acc;
            for (const auto &x : parts)
                Repr::add(acc, x, acc);
            return acc;
        };
        // lambda = 36u^3 + 18u^2 + 6u + 1.
        p.lambdaRepr = sum({mulSmall(u3, 36), mulSmall(u2, 18),
                            mulSmall(u, 6), Repr::one()});
        p.lambda = Scalar::fromBigInt(p.lambdaRepr);
        // Short basis: v1 = (6u^2+2u, 6u^2+4u+1), v2 = (6u^2+4u+1,
        // 2u+1); both entries positive, det = -r.
        p.a1 = sum({mulSmall(u2, 6), mulSmall(u, 2)});
        p.b1 = sum({mulSmall(u2, 6), mulSmall(u, 4), Repr::one()});
        p.a2 = p.b1;
        p.b2 = sum({mulSmall(u, 2), Repr::one()});
        p.a1F = Scalar::fromBigInt(p.a1);
        p.b1F = Scalar::fromBigInt(p.b1);
        p.a2F = Scalar::fromBigInt(p.a2);
        p.b2F = Scalar::fromBigInt(p.b2);

        // Reciprocals g_i = floor(2^384 * b_i / r).
        Wide r = Scalar::modulus().resize<8>();
        p.g1 = glv_detail::divFloor(p.b1.resize<8>().shl(384), r);
        p.g2 = glv_detail::divFloor(p.b2.resize<8>().shl(384), r);

        // beta = zeta or zeta^2 for a primitive cube root zeta in Fq,
        // picked so phi really is multiplication by this lambda.
        Field zeta = Field::zero();
        auto exp = glv_detail::divSmall(
            [] {
                Repr qm1;
                Repr::sub(Field::modulus().resize<4>(),
                          Repr::one(), qm1);
                return qm1;
            }(),
            3);
        for (std::uint64_t h = 2; h < 100; ++h) {
            Field c = Field::fromUint64(h).pow(exp);
            if (!(c == Field::one())) {
                zeta = c;
                break;
            }
        }

        verify(p, zeta);
        return p;
    }

    /**
     * Startup self-check: every derived constant is re-validated
     * against its defining identity so a bad basis or beta can never
     * silently corrupt an MSM.
     */
    static void
    verify(Params &p, const Field &zeta)
    {
        auto fail = [](const char *what) {
            throw std::logic_error(std::string("Glv<Bn254>: ") + what);
        };
        if (zeta.isZero() || !(zeta.squared() * zeta == Field::one()))
            fail("no cube root of unity found in Fq");
        Scalar l = p.lambda;
        if (!((l.squared() + l + Scalar::one()).isZero()))
            fail("lambda^2 + lambda + 1 != 0 in Fr");
        if (!((p.a1F + l * p.b1F).isZero()) ||
            !((p.a2F + l * p.b2F).isZero()))
            fail("lattice basis not in ker(a + lambda*b)");

        // phi(G) must equal lambda * G; zeta vs zeta^2 selects which
        // of the two non-trivial cube roots matches this lambda.
        // (endo() is not callable here: params() is mid-construction.)
        ECPoint<Cfg> lg =
            ECPoint<Cfg>::generator().mul(p.lambdaRepr);
        Affine gen = ECPoint<Cfg>::generatorAffine();
        for (const Field &cand : {zeta, zeta.squared()}) {
            p.beta = cand;
            Affine mapped(cand * gen.x, gen.y);
            if (lg == ECPoint<Cfg>::fromAffine(mapped))
                return;
        }
        fail("neither cube root satisfies phi(G) == lambda * G");
    }
};

} // namespace gzkp::ec

#endif // GZKP_EC_GLV_HH
