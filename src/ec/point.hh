/**
 * @file
 * Elliptic-curve points and the PADD / PMUL primitives.
 *
 * The paper (Section 2.1, Figure 1) treats point addition (PADD,
 * including doubling) and scalar point multiplication (PMUL) as the
 * basic MSM building blocks. This header implements them over any
 * coordinate field produced by the ff library (Fp or Fp2), using
 * Jacobian projective coordinates so the hot path is inversion-free.
 *
 * A curve is described by a config type:
 *
 *   struct SomeCurveCfg {
 *       using Field  = ...;  // coordinate field
 *       using Scalar = ...;  // scalar field Fr
 *       static Field a();    // short Weierstrass a4
 *       static Field b();    // short Weierstrass a6
 *       static Field genX(); // affine generator
 *       static Field genY();
 *       static const char *name();
 *   };
 */

#ifndef GZKP_EC_POINT_HH
#define GZKP_EC_POINT_HH

#include <cstddef>
#include <vector>

#include "ff/bigint.hh"
#include "ff/fp.hh"

namespace gzkp::ec {

/** An affine point; `infinity` marks the group identity. */
template <typename Cfg>
struct AffinePoint {
    using Field = typename Cfg::Field;

    Field x, y;
    bool infinity = true;

    AffinePoint() = default;
    AffinePoint(const Field &x_, const Field &y_)
        : x(x_), y(y_), infinity(false)
    {}

    static AffinePoint
    identity()
    {
        return AffinePoint();
    }

    bool
    operator==(const AffinePoint &o) const
    {
        if (infinity || o.infinity)
            return infinity == o.infinity;
        return x == o.x && y == o.y;
    }
    bool operator!=(const AffinePoint &o) const { return !(*this == o); }

    AffinePoint
    negate() const
    {
        if (infinity)
            return *this;
        return AffinePoint(x, -y);
    }

    /** Check y^2 == x^3 + a x + b (identity passes trivially). */
    bool
    onCurve() const
    {
        if (infinity)
            return true;
        Field lhs = y.squared();
        Field rhs = x.squared() * x + Cfg::a() * x + Cfg::b();
        return lhs == rhs;
    }
};

/**
 * A point in Jacobian coordinates (X, Y, Z) with x = X/Z^2,
 * y = Y/Z^3; Z = 0 encodes the identity.
 */
template <typename Cfg>
class ECPoint
{
  public:
    using Field = typename Cfg::Field;
    using Scalar = typename Cfg::Scalar;
    using Affine = AffinePoint<Cfg>;

    Field X, Y, Z;

    /** Default-constructed point is the identity. */
    ECPoint() : X(Field::zero()), Y(Field::one()), Z(Field::zero()) {}

    ECPoint(const Field &x, const Field &y, const Field &z)
        : X(x), Y(y), Z(z)
    {}

    static ECPoint identity() { return ECPoint(); }

    static ECPoint
    fromAffine(const Affine &p)
    {
        if (p.infinity)
            return identity();
        return ECPoint(p.x, p.y, Field::one());
    }

    static Affine
    generatorAffine()
    {
        return Affine(Cfg::genX(), Cfg::genY());
    }

    static ECPoint generator() { return fromAffine(generatorAffine()); }

    bool isZero() const { return Z.isZero(); }

    /** Convert to affine; costs one field inversion. */
    Affine
    toAffine() const
    {
        if (isZero())
            return Affine::identity();
        Field zinv = Z.inverse();
        Field zinv2 = zinv.squared();
        return Affine(X * zinv2, Y * zinv2 * zinv);
    }

    /** Projective equality without normalisation. */
    bool
    operator==(const ECPoint &o) const
    {
        if (isZero() || o.isZero())
            return isZero() == o.isZero();
        Field z1z1 = Z.squared();
        Field z2z2 = o.Z.squared();
        if (X * z2z2 != o.X * z1z1)
            return false;
        return Y * z2z2 * o.Z == o.Y * z1z1 * Z;
    }
    bool operator!=(const ECPoint &o) const { return !(*this == o); }

    ECPoint
    negate() const
    {
        if (isZero())
            return *this;
        return ECPoint(X, -Y, Z);
    }

    /** Point doubling (one PADD in the paper's accounting). */
    ECPoint
    dbl() const
    {
        if (isZero() || Y.isZero())
            return identity();
        // dbl-2007-bl, general a4.
        Field xx = X.squared();
        Field yy = Y.squared();
        Field yyyy = yy.squared();
        Field zz = Z.squared();
        Field s = ((X + yy).squared() - xx - yyyy).dbl();
        Field m = xx + xx + xx + Cfg::a() * zz.squared();
        Field x3 = m.squared() - s - s;
        Field y3 = m * (s - x3) - yyyy.dbl().dbl().dbl();
        Field z3 = (Y + Z).squared() - yy - zz;
        return ECPoint(x3, y3, z3);
    }

    /** Full Jacobian addition (PADD). */
    ECPoint
    add(const ECPoint &o) const
    {
        if (isZero())
            return o;
        if (o.isZero())
            return *this;
        Field z1z1 = Z.squared();
        Field z2z2 = o.Z.squared();
        Field u1 = X * z2z2;
        Field u2 = o.X * z1z1;
        Field s1 = Y * o.Z * z2z2;
        Field s2 = o.Y * Z * z1z1;
        if (u1 == u2) {
            if (s1 == s2)
                return dbl();
            return identity();
        }
        Field h = u2 - u1;
        Field hh = h.squared();
        Field hhh = h * hh;
        Field v = u1 * hh;
        Field r = s2 - s1;
        Field x3 = r.squared() - hhh - v.dbl();
        Field y3 = r * (v - x3) - s1 * hhh;
        Field z3 = Z * o.Z * h;
        return ECPoint(x3, y3, z3);
    }

    /** Mixed addition with an affine operand (cheaper PADD). */
    ECPoint
    addMixed(const Affine &o) const
    {
        if (o.infinity)
            return *this;
        if (isZero())
            return fromAffine(o);
        Field z1z1 = Z.squared();
        Field u2 = o.x * z1z1;
        Field s2 = o.y * Z * z1z1;
        if (X == u2) {
            if (Y == s2)
                return dbl();
            return identity();
        }
        Field h = u2 - X;
        Field hh = h.squared();
        Field hhh = h * hh;
        Field v = X * hh;
        Field r = s2 - Y;
        Field x3 = r.squared() - hhh - v.dbl();
        Field y3 = r * (v - x3) - Y * hhh;
        Field z3 = Z * h;
        return ECPoint(x3, y3, z3);
    }

    ECPoint operator+(const ECPoint &o) const { return add(o); }
    ECPoint &operator+=(const ECPoint &o) { return *this = add(o); }
    ECPoint operator-(const ECPoint &o) const { return add(o.negate()); }

    /**
     * PMUL: double-and-add scalar multiplication by a raw integer.
     * MSM algorithms avoid this (that is the whole point of the
     * paper); it remains the reference and setup-time primitive.
     */
    template <std::size_t M>
    ECPoint
    mul(const gzkp::ff::BigInt<M> &k) const
    {
        ECPoint result;
        for (std::size_t i = k.numBits(); i-- > 0;) {
            result = result.dbl();
            if (k.bit(i))
                result += *this;
        }
        return result;
    }

    ECPoint
    mul(const Scalar &k) const
    {
        return mul(k.toBigInt());
    }

    ECPoint mul(std::uint64_t k) const
    {
        return mul(gzkp::ff::BigInt<1>::fromUint64(k));
    }
};

template <typename Cfg, std::size_t M>
inline ECPoint<Cfg>
operator*(const gzkp::ff::BigInt<M> &k, const ECPoint<Cfg> &p)
{
    return p.mul(k);
}

/**
 * True when p lies on the curve AND in the order-r subgroup (r =
 * Cfg::Scalar's modulus), checked as r * P == identity. For curves
 * with cofactor 1 (BN254 G1) the subgroup check is implied by
 * on-curve, but G2 groups have large cofactors and an on-curve
 * point outside the r-subgroup enables small-subgroup confinement
 * attacks on the pairing argument -- every externally supplied point
 * must pass this before it is used in verification.
 */
template <typename Cfg>
bool
inPrimeSubgroup(const AffinePoint<Cfg> &p)
{
    if (!p.onCurve())
        return false;
    return ECPoint<Cfg>::fromAffine(p)
        .mul(Cfg::Scalar::modulus())
        .isZero();
}

/**
 * Batch-normalise Jacobian points to affine with a single inversion.
 * Identity points (Z == 0) map to affine identity -- exactly the
 * skip-and-preserve zero semantics ff::batchInverse guarantees.
 */
template <typename Cfg>
std::vector<AffinePoint<Cfg>>
batchToAffine(const std::vector<ECPoint<Cfg>> &pts)
{
    using Field = typename Cfg::Field;
    std::vector<Field> zs(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i)
        zs[i] = pts[i].Z;
    gzkp::ff::batchInverse(zs);

    std::vector<AffinePoint<Cfg>> out(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        if (pts[i].isZero())
            continue;
        Field zinv2 = zs[i].squared();
        out[i] = AffinePoint<Cfg>(pts[i].X * zinv2,
                                  pts[i].Y * zinv2 * zs[i]);
    }
    return out;
}

} // namespace gzkp::ec

#endif // GZKP_EC_POINT_HH
