/**
 * @file
 * Fixed-base windowed scalar multiplication.
 *
 * The trusted setup evaluates thousands of PMULs against the same
 * generator; a per-base precomputed window table turns each into
 * ~l/k mixed additions. (This is setup-time machinery -- the prover
 * hot path uses the MSM module instead.)
 */

#ifndef GZKP_EC_FIXED_BASE_HH
#define GZKP_EC_FIXED_BASE_HH

#include <vector>

#include "ec/point.hh"

namespace gzkp::ec {

template <typename Cfg>
class FixedBaseMul
{
  public:
    using Point = ECPoint<Cfg>;
    using Affine = AffinePoint<Cfg>;
    using Scalar = typename Cfg::Scalar;

    /** Build the table for `base`; k window bits (default 8). */
    explicit FixedBaseMul(const Point &base, std::size_t k = 8)
        : k_(k)
    {
        std::size_t l = Scalar::bits();
        std::size_t windows = (l + k - 1) / k;
        std::size_t per = (std::size_t(1) << k) - 1;
        std::vector<Point> table;
        table.reserve(windows * per);
        Point w_base = base;
        for (std::size_t t = 0; t < windows; ++t) {
            Point acc = w_base;
            for (std::size_t d = 0; d < per; ++d) {
                table.push_back(acc);
                acc += w_base;
            }
            w_base = acc; // acc = 2^k * w_base after the loop
        }
        table_ = batchToAffine<Cfg>(table);
    }

    Point
    mul(const Scalar &s) const
    {
        auto repr = s.toBigInt();
        std::size_t per = (std::size_t(1) << k_) - 1;
        std::size_t windows = table_.size() / per;
        Point acc;
        for (std::size_t t = 0; t < windows; ++t) {
            std::uint64_t d = repr.bits(t * k_, k_);
            if (d != 0)
                acc = acc.addMixed(table_[t * per + d - 1]);
        }
        return acc;
    }

  private:
    std::size_t k_;
    std::vector<Affine> table_;
};

} // namespace gzkp::ec

#endif // GZKP_EC_FIXED_BASE_HH
