/**
 * @file
 * Modeled GPU device configurations.
 *
 * The paper evaluates on NVIDIA Tesla V100 (32 GB) and GTX 1080 Ti
 * (11 GB). This environment has no GPU, so GZKP-CPP substitutes an
 * analytic device model in the gem5 tradition: kernels execute
 * functionally on the host while their operation and memory-
 * transaction counts are converted to modeled GPU time by a roofline
 * performance model (see perf_model.hh). The parameters below are
 * public datasheet numbers.
 */

#ifndef GZKP_GPUSIM_DEVICE_HH
#define GZKP_GPUSIM_DEVICE_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace gzkp::gpusim {

/** Static description of one modeled GPU. */
struct DeviceConfig {
    std::string name;
    std::size_t numSMs = 0;
    std::size_t sharedMemPerSMBytes = 0;
    std::size_t maxThreadsPerBlock = 1024;
    std::size_t warpSize = 32;
    std::size_t l2LineBytes = 32;     //!< L2 sector size (paper S3)
    double clockGHz = 0;
    double memBandwidthGBps = 0;      //!< global-memory peak
    std::uint64_t globalMemBytes = 0;
    double pcieGBps = 12.0;           //!< host <-> device transfers
    double kernelLaunchSeconds = 5e-6;
    double blockDispatchCycles = 300; //!< per-block scheduling cost

    /**
     * DRAM inefficiency for scattered traffic: lines fetched by low-
     * utilisation (gather/scatter) streams cost up to this factor
     * more than streaming lines, reflecting row-buffer misses and
     * transaction-queue pressure. Applied as
     *   1 + rowMissFactor * (1 - line utilisation).
     */
    double rowMissFactor = 3.0;

    /**
     * Issue throughput per SM per cycle. Field multiplication is
     * dominated by 32-bit integer multiply-accumulate; the FP path
     * additionally uses the double-precision FMA pipes.
     */
    double int32MacPerSMPerCycle = 0;
    double dpFmaPerSMPerCycle = 0;

    /** Tesla V100-SXM2-32GB. */
    static DeviceConfig
    v100()
    {
        DeviceConfig d;
        d.name = "Tesla V100";
        d.numSMs = 80;
        d.sharedMemPerSMBytes = 48 * 1024;
        d.clockGHz = 1.38;
        d.memBandwidthGBps = 900.0;
        d.globalMemBytes = 32ull << 30;
        d.int32MacPerSMPerCycle = 64;
        d.dpFmaPerSMPerCycle = 32; // 1:2 DP ratio on GV100
        return d;
    }

    /** GeForce GTX 1080 Ti (lower SM count, bandwidth, and DP). */
    static DeviceConfig
    gtx1080ti()
    {
        DeviceConfig d;
        d.name = "GTX 1080 Ti";
        d.numSMs = 28;
        d.sharedMemPerSMBytes = 48 * 1024;
        d.clockGHz = 1.58;
        d.memBandwidthGBps = 484.0;
        d.globalMemBytes = 11ull << 30;
        d.int32MacPerSMPerCycle = 64;
        d.dpFmaPerSMPerCycle = 2; // 1:32 DP ratio on GP102
        return d;
    }
};

} // namespace gzkp::gpusim

#endif // GZKP_GPUSIM_DEVICE_HH
