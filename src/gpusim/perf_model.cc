#include "gpusim/perf_model.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "ff/fpu_backend.hh"

namespace gzkp::gpusim {

namespace {
// Atomic: stats modeling runs from runtime worker threads.
std::atomic<bool> g_strict_invariants{false};
} // namespace

void
setStrictInvariants(bool enabled)
{
    g_strict_invariants.store(enabled, std::memory_order_relaxed);
}

bool
strictInvariants()
{
    return g_strict_invariants.load(std::memory_order_relaxed);
}

std::vector<std::string>
invariantViolations(const KernelStats &s, const DeviceConfig &dev)
{
    std::vector<std::string> out;
    auto fail = [&out](const auto &...parts) {
        std::ostringstream os;
        (os << ... << parts);
        out.push_back(os.str());
    };

    std::uint64_t line_cap =
        std::uint64_t(dev.l2LineBytes) * s.linesTouched;
    if (s.usefulBytes > line_cap) {
        fail("usefulBytes (", s.usefulBytes, ") exceeds l2LineBytes * ",
             "linesTouched (", line_cap, ")");
    }
    if (s.usefulBytes > 0 && s.linesTouched == 0)
        fail("usefulBytes > 0 with no lines touched");
    if (!(s.loadImbalanceFactor >= 1.0))
        fail("loadImbalanceFactor (", s.loadImbalanceFactor, ") < 1");
    if (!(s.idleLaneFactor > 0.0 && s.idleLaneFactor <= 1.0))
        fail("idleLaneFactor (", s.idleLaneFactor, ") outside (0, 1]");
    if (!(s.libGainFactor >= 0.0 && s.libGainFactor <= 1.0))
        fail("libGainFactor (", s.libGainFactor, ") outside [0, 1]");
    if (!(s.fieldMuls >= 0.0))
        fail("fieldMuls (", s.fieldMuls, ") negative");
    if (!(s.fieldAdds >= 0.0))
        fail("fieldAdds (", s.fieldAdds, ") negative");
    if (!(s.fieldInvs >= 0.0))
        fail("fieldInvs (", s.fieldInvs, ") negative");
    if (s.limbs == 0)
        fail("limbs == 0");
    if (!(s.hostSeconds >= 0.0))
        fail("hostSeconds (", s.hostSeconds, ") negative");
    if (!(s.pcieBytes >= 0.0))
        fail("pcieBytes (", s.pcieBytes, ") negative");
    return out;
}

double
fpuSpeedupOnDevice(const DeviceConfig &dev, std::size_t limbs)
{
    double ideal = ff::fpuBackendSpeedup(limbs);
    // The library's gain assumes DP pipes at >= half the INT32 rate
    // (Volta). Scale the gain down linearly with the DP:INT ratio.
    double dp_ratio = dev.dpFmaPerSMPerCycle /
        std::max(1.0, dev.int32MacPerSMPerCycle);
    double avail = std::min(1.0, dp_ratio / 0.5);
    return 1.0 + (ideal - 1.0) * avail;
}

double
modelComputeSeconds(const KernelStats &s, const DeviceConfig &dev,
                    Backend backend)
{
    double macs = s.fieldMuls * macsPerFieldMul(s.limbs) +
        s.fieldAdds * macsPerFieldAdd(s.limbs) +
        s.fieldInvs * macsPerFieldInv(s.limbs);

    // SMs actually occupied: with fewer blocks than SMs, the rest of
    // the chip idles (the paper's Figure 8 discussion at 2^18).
    double active_sms = dev.numSMs;
    if (s.numBlocks > 0)
        active_sms = std::min<double>(dev.numSMs, double(s.numBlocks));

    double issue = dev.int32MacPerSMPerCycle * active_sms *
        dev.clockGHz * 1e9 * kIssueEfficiency;
    if (backend == Backend::FpuLib) {
        double gain = fpuSpeedupOnDevice(dev, s.limbs) - 1.0;
        issue *= 1.0 + gain * s.libGainFactor;
    }

    issue *= s.idleLaneFactor;          // idle warp lanes
    issue /= s.loadImbalanceFactor;     // straggler SMs

    return issue > 0 ? macs / issue : 0;
}

double
modelMemorySeconds(const KernelStats &s, const DeviceConfig &dev)
{
    double bytes = double(s.linesTouched) * dev.l2LineBytes;
    double util = 1.0;
    if (bytes > 0)
        util = std::min(1.0, double(s.usefulBytes) / bytes);
    double penalty = 1.0 + dev.rowMissFactor * (1.0 - util);
    return bytes * penalty / (dev.memBandwidthGBps * 1e9);
}

double
modelSeconds(const KernelStats &s, const DeviceConfig &dev, Backend backend)
{
    if (strictInvariants()) {
        auto bad = invariantViolations(s, dev);
        if (!bad.empty())
            throw std::logic_error("KernelStats invariant: " + bad[0]);
    }
    double compute = modelComputeSeconds(s, dev, backend);
    double memory = modelMemorySeconds(s, dev);

    double dispatch = double(s.numBlocks) * dev.blockDispatchCycles /
        (dev.clockGHz * 1e9 * dev.numSMs);
    double launch = double(s.numLaunches) * dev.kernelLaunchSeconds;
    double pcie = s.pcieBytes / (dev.pcieGBps * 1e9);

    return std::max(compute, memory) + dispatch + launch +
        s.hostSeconds + pcie;
}

double
cpuModelSeconds(const CpuStats &s, const CpuConfig &cpu)
{
    double serial_ns = s.fieldMuls * cpu.mulNs(s.limbs) +
        s.fieldAdds * cpu.addNs(s.limbs) +
        s.fieldInvs * cpu.invNs(s.limbs);
    double par = double(cpu.threads) * cpu.parallelEfficiency;
    double t = serial_ns * (s.serialFraction +
                            (1.0 - s.serialFraction) / par);
    return t * 1e-9;
}

} // namespace gzkp::gpusim
