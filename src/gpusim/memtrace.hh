/**
 * @file
 * Warp-level global-memory coalescing model.
 *
 * The heart of the paper's POLY-stage argument (Sections 2.2 and 3)
 * is L2 cache-line utilisation: a warp access that touches many
 * distinct 32-byte L2 lines while using few bytes of each wastes
 * bandwidth, which is why prior systems shuffle data between NTT
 * batches and why GZKP's block-style internal shuffle wins without
 * shuffling.
 *
 * MemTrace receives every warp-level global access a kernel performs
 * (byte address + size per lane) and accumulates the number of
 * distinct lines touched versus bytes actually used. NTT access
 * patterns are data-independent, so variants can replay their real
 * access streams at full fidelity without doing field arithmetic.
 */

#ifndef GZKP_GPUSIM_MEMTRACE_HH
#define GZKP_GPUSIM_MEMTRACE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

namespace gzkp::gpusim {

/** Aggregated global-memory transaction statistics for one kernel. */
class MemTrace
{
  public:
    explicit MemTrace(std::size_t line_bytes = 32)
        : lineBytes_(line_bytes)
    {}

    /**
     * Record one warp-wide access: each entry of `addrs` is the byte
     * address one lane reads/writes, each lane moving `bytes_each`
     * useful bytes. Distinct lines are counted per warp transaction,
     * mirroring how the hardware replays a transaction per line.
     */
    void
    warpAccess(const std::vector<std::uint64_t> &addrs,
               std::size_t bytes_each)
    {
        scratch_.clear();
        for (std::uint64_t a : addrs) {
            // An access may straddle lines; count every line touched.
            std::uint64_t first = a / lineBytes_;
            std::uint64_t last = (a + bytes_each - 1) / lineBytes_;
            for (std::uint64_t l = first; l <= last; ++l)
                scratch_.push_back(l);
        }
        std::sort(scratch_.begin(), scratch_.end());
        scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                       scratch_.end());
        linesTouched_ += scratch_.size();
        usefulBytes_ += addrs.size() * bytes_each;
        ++warpTransactions_;
    }

    /** Convenience: one lane's scalar access (e.g. serial phases). */
    void
    scalarAccess(std::uint64_t addr, std::size_t bytes)
    {
        warpAccess({addr}, bytes);
    }

    std::uint64_t linesTouched() const { return linesTouched_; }
    std::uint64_t bytesMoved() const { return linesTouched_ * lineBytes_; }
    std::uint64_t usefulBytes() const { return usefulBytes_; }
    std::uint64_t warpTransactions() const { return warpTransactions_; }

    /** Fraction of moved bytes that were actually requested. */
    double
    utilization() const
    {
        if (linesTouched_ == 0)
            return 1.0;
        return double(usefulBytes_) / double(bytesMoved());
    }

    void
    merge(const MemTrace &o)
    {
        linesTouched_ += o.linesTouched_;
        usefulBytes_ += o.usefulBytes_;
        warpTransactions_ += o.warpTransactions_;
    }

    void
    reset()
    {
        linesTouched_ = 0;
        usefulBytes_ = 0;
        warpTransactions_ = 0;
    }

  private:
    std::size_t lineBytes_;
    std::uint64_t linesTouched_ = 0;
    std::uint64_t usefulBytes_ = 0;
    std::uint64_t warpTransactions_ = 0;
    std::vector<std::uint64_t> scratch_;
};

} // namespace gzkp::gpusim

#endif // GZKP_GPUSIM_MEMTRACE_HH
