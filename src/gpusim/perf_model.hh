/**
 * @file
 * Roofline performance model for modeled GPU (and baseline CPU)
 * execution times.
 *
 * Kernels in the ntt/ and msm/ modules execute functionally on the
 * host and report KernelStats: how many field multiplications and
 * additions they performed, how many global-memory lines their warp
 * accesses touched (via MemTrace), how full their warps were, and how
 * balanced their blocks were. PerfModel converts those counts to
 * seconds with a classic roofline:
 *
 *     t = max(compute, memory) + launch + dispatch + host + PCIe
 *
 * Per-op costs are first-principles MAC counts for CIOS Montgomery
 * multiplication, with a single pipeline-efficiency scalar calibrated
 * once (see EXPERIMENTS.md "model calibration"); all *relative*
 * results -- who wins, by what factor, where crossovers fall -- come
 * from the counted quantities, not from tuning.
 */

#ifndef GZKP_GPUSIM_PERF_MODEL_HH
#define GZKP_GPUSIM_PERF_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/device.hh"
#include "gpusim/memtrace.hh"

namespace gzkp::gpusim {

/** Which finite-field backend a kernel is modeled with (S4.3). */
enum class Backend {
    IntOnly, //!< 32-bit integer MAC pipeline only
    FpuLib,  //!< optimized library: DP units assist (Dekker 2^52)
};

/** Everything a kernel reports for time modeling. */
struct KernelStats {
    std::size_t limbs = 4;            //!< field width in 64-bit limbs
    double fieldMuls = 0;             //!< modular multiplications
    double fieldAdds = 0;             //!< modular additions/subs
    double fieldInvs = 0;             //!< modular inversions (Fermat)
    std::uint64_t linesTouched = 0;   //!< global L2 lines moved
    std::uint64_t usefulBytes = 0;    //!< bytes actually requested
    double idleLaneFactor = 1.0;      //!< avg useful fraction of warp
    double loadImbalanceFactor = 1.0; //!< max/mean SM load (>= 1)
    std::uint64_t numBlocks = 0;
    std::uint64_t numLaunches = 1;
    double hostSeconds = 0;           //!< serial host-side portion
    double pcieBytes = 0;             //!< host <-> device traffic

    /**
     * How much of the FP-library's ideal gain this kernel realises:
     * mult-dominated NTT butterflies get the full gain (1.0), while
     * the serial dependency chains of EC addition formulas cap the
     * MSM kernels around half (paper Figures 8 vs 10: 1.6x vs 1.33x).
     */
    double libGainFactor = 1.0;

    /** Fold a memory trace's transaction counts into this kernel. */
    void
    addTrace(const MemTrace &t)
    {
        linesTouched += t.linesTouched();
        usefulBytes += t.usefulBytes();
    }

    KernelStats &
    operator+=(const KernelStats &o)
    {
        // Aggregate sequential kernels of the same field width.
        fieldMuls += o.fieldMuls;
        fieldAdds += o.fieldAdds;
        fieldInvs += o.fieldInvs;
        linesTouched += o.linesTouched;
        usefulBytes += o.usefulBytes;
        // Weighted-average the efficiency factors by multiplies.
        double w0 = fieldMuls - o.fieldMuls, w1 = o.fieldMuls;
        if (w0 + w1 > 0) {
            idleLaneFactor = (idleLaneFactor * w0 +
                              o.idleLaneFactor * w1) / (w0 + w1);
            loadImbalanceFactor = (loadImbalanceFactor * w0 +
                                   o.loadImbalanceFactor * w1) / (w0 + w1);
            libGainFactor = (libGainFactor * w0 +
                             o.libGainFactor * w1) / (w0 + w1);
        }
        numBlocks += o.numBlocks;
        numLaunches += o.numLaunches;
        hostSeconds += o.hostSeconds;
        pcieBytes += o.pcieBytes;
        return *this;
    }
};

/** 32-bit MAC-equivalents of one CIOS Montgomery multiplication. */
inline double
macsPerFieldMul(std::size_t limbs)
{
    // 2N^2 + N 64-bit MACs, each 4 32-bit MACs, plus carry handling.
    return 4.0 * (2.0 * limbs * limbs + limbs) + 8.0 * limbs;
}

/** 32-bit op-equivalents of one modular addition. */
inline double
macsPerFieldAdd(std::size_t limbs)
{
    return 3.0 * limbs;
}

/**
 * Field-multiplication equivalents of one Fermat inversion: a
 * square-and-multiply over the ~64*limbs-bit exponent p-2 costs one
 * squaring per bit plus a multiply on the ~50% set bits.
 */
inline double
mulsPerFieldInv(std::size_t limbs)
{
    return 1.5 * 64.0 * double(limbs);
}

/** 32-bit op-equivalents of one modular inversion. */
inline double
macsPerFieldInv(std::size_t limbs)
{
    return mulsPerFieldInv(limbs) * macsPerFieldMul(limbs);
}

/**
 * Modeled library speedup for a device: the Dekker/2^52 path only
 * pays off when the DP pipes are wide relative to INT32 (V100 1:2;
 * consumer Pascal 1:32 sees almost nothing).
 */
double fpuSpeedupOnDevice(const DeviceConfig &dev, std::size_t limbs);

/**
 * Fraction of peak issue rate a tuned big-integer kernel sustains.
 * Single calibration constant; see EXPERIMENTS.md for derivation.
 */
inline constexpr double kIssueEfficiency = 0.25;

/**
 * Accounting invariants every kernel report must satisfy, checked so
 * the perf model is a verified contract rather than trusted output:
 *
 *  - usefulBytes <= l2LineBytes * linesTouched (a line moves at most
 *    one line's worth of useful data);
 *  - loadImbalanceFactor >= 1 (max/mean by construction);
 *  - idleLaneFactor in (0, 1] (fraction of useful warp lanes);
 *  - libGainFactor in [0, 1]; op counts and limb width non-negative;
 *  - usefulBytes > 0 implies linesTouched > 0.
 *
 * Returns a human-readable description of every violated invariant
 * (empty = consistent).
 */
std::vector<std::string> invariantViolations(const KernelStats &s,
                                             const DeviceConfig &dev);

/**
 * When enabled, modelSeconds() throws std::logic_error on any
 * invariant violation instead of silently producing a time. Off by
 * default; the fuzz driver and differential tests switch it on.
 */
void setStrictInvariants(bool enabled);
bool strictInvariants();

/** Convert kernel statistics to modeled seconds on a device. */
double modelSeconds(const KernelStats &s, const DeviceConfig &dev,
                    Backend backend = Backend::FpuLib);

/** Compute-side time only (for breakdown figures). */
double modelComputeSeconds(const KernelStats &s, const DeviceConfig &dev,
                           Backend backend = Backend::FpuLib);

/** Memory-side time only (for breakdown figures). */
double modelMemorySeconds(const KernelStats &s, const DeviceConfig &dev);

/**
 * Baseline CPU host model (dual Xeon Gold 5117 in the paper),
 * anchored on the paper's own Section 1 measurements: 230 ns per
 * 381-bit modular multiplication and 43 ns per large-integer add.
 */
struct CpuConfig {
    std::string name = "2x Xeon Gold 5117";
    std::size_t threads = 56;
    double parallelEfficiency = 0.45;
    double mulNs381 = 230.0;
    double addNs381 = 43.0;

    double
    mulNs(std::size_t limbs) const
    {
        double f = double(limbs) / 6.0; // calibrated at 6 limbs
        return mulNs381 * f * f;        // schoolbook is quadratic
    }

    double
    addNs(std::size_t limbs) const
    {
        return addNs381 * double(limbs) / 6.0;
    }

    double
    invNs(std::size_t limbs) const
    {
        return mulsPerFieldInv(limbs) * mulNs(limbs);
    }

    static CpuConfig xeonGold5117x2() { return CpuConfig(); }
};

/** CPU work description: op counts plus a serial fraction. */
struct CpuStats {
    std::size_t limbs = 4;
    double fieldMuls = 0;
    double fieldAdds = 0;
    double fieldInvs = 0; //!< shared inversions (batch-affine rounds)
    double serialFraction = 0.05; //!< Amdahl term
};

double cpuModelSeconds(const CpuStats &s, const CpuConfig &cpu);

} // namespace gzkp::gpusim

#endif // GZKP_GPUSIM_PERF_MODEL_HH
