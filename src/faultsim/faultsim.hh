/**
 * @file
 * Deterministic fault injection for the prover pipeline.
 *
 * GZKP's real deployment target is a GPU running multi-second MSM/NTT
 * kernels, where soft memory errors, failed allocations, and failed
 * kernel launches are a matter of *when*, not *if*. This environment
 * has no GPU, but the recovery machinery (self-checking prover,
 * backend fallback, checkpoint/resume -- see zkp/prover_pipeline.hh)
 * must be testable anyway, so faults are simulated: instrumented
 * probes sit at the pipeline's natural hazard points and a process-
 * wide *fault plan* decides which probes fire.
 *
 * Fault taxonomy (one probe kind per hazard class):
 *  - Alloc:     a large device/host allocation fails (std::bad_alloc
 *               semantics via a StatusError kResourceExhausted).
 *  - BitFlip:   a field element suffers a single-bit soft error.
 *  - Bucket:    an MSM bucket accumulator is corrupted (the GPU
 *               analogue: a warp writes a stale partial sum).
 *  - Butterfly: one NTT stage output element is corrupted.
 *  - Launch:    a "kernel launch" fails (StatusError kUnavailable).
 *
 * Determinism: whether a probe fires is a pure function of
 * (plan seed, probe site, probe index, fault kind, epoch) -- never of
 * thread schedule -- so a fault plan replays exactly, even inside
 * parallel regions. The *epoch* is bumped by the recovery layer
 * between retry attempts, which is how a plan models transient
 * faults: an arm with `limit` set stops firing after `limit` fires,
 * and an arm without it refires every epoch (a persistent fault that
 * forces backend demotion).
 *
 * Plans come from code (ScopedFaultPlan in tests) or from the
 * GZKP_FAULTS environment variable:
 *
 *     GZKP_FAULTS="seed=7;bitflip@msm:50;launch@*:200#1"
 *
 * i.e. `kind@site:period[#limit]` arms separated by ';', where `site`
 * is a substring match against probe-site names ('*' = everywhere)
 * and a probe fires when hash(seed, site, kind, index, epoch) is 0
 * mod `period`. When no plan is installed every probe is a single
 * relaxed atomic load -- and with an *empty* plan installed, probes
 * never fire and never touch data, so proof bytes are identical to a
 * run without faultsim (asserted by tests/test_chaos.cc).
 *
 * Probe-site vocabulary (substring-matchable): the prover sites
 * (msm.gzkp[.bucket|.preprocess|.kernel], msm.bellperson, msm.serial,
 * ntt.cpu, groth16.poly.h) plus the serving layer's --
 *  - service.queue:       admission enqueue/dispatch failures;
 *  - service.cache.build: artifact build allocation failures;
 *  - service.cache.table: post-build corruption of a cached table;
 *  - service.shed:        spurious admission shed (overload control
 *                         rejecting work it did not have to);
 *  - service.hedge:       hedge launch failure (downgrades the
 *                         request to the unhedged path);
 *  - service.breaker:     lying health signal (a healthy backend is
 *                         spuriously denied by the circuit breaker).
 * The service.* sites perturb routing and admission only; they can
 * never corrupt a proof (asserted by the overload chaos sweep).
 *
 * Per-device sites (multi-device scheduler, src/device/): every
 * device instance carries three sites suffixed with its name, so a
 * plan can target one card out of a fleet ("device.fail" matches all
 * of them; "device.fail.v100.0" exactly one) --
 *  - device.fail.<name>: the placed stage fails at launch
 *                        (kUnavailable; retried on a re-placed
 *                        device, persistent firing quarantines the
 *                        device via its breaker);
 *  - device.mem.<name>:  the placed stage fails allocation
 *                        (kResourceExhausted; same recovery);
 *  - device.slow.<name>: the stage's *modeled* duration is inflated
 *                        -- a throttled or contended card; never an
 *                        error, the placement layer just learns to
 *                        route around it.
 * All device.* sites are routing/timing-only: retried stages
 * recompute identical bytes (asserted by the device chaos sweep).
 */

#ifndef GZKP_FAULTSIM_FAULTSIM_HH
#define GZKP_FAULTSIM_FAULTSIM_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "status/status.hh"

namespace gzkp::faultsim {

enum class FaultKind {
    Alloc = 0,
    BitFlip,
    Bucket,
    Butterfly,
    Launch,
};
inline constexpr std::size_t kFaultKindCount = 5;

const char *name(FaultKind kind);

/** Parse "alloc" / "bitflip" / "bucket" / "butterfly" / "launch". */
StatusOr<FaultKind> kindFromName(std::string_view s);

/** One injection rule of a plan. */
struct FaultArm {
    FaultKind kind = FaultKind::BitFlip;
    /** Substring matched against probe sites; "*" or "" = all. */
    std::string site = "*";
    /** Fire on ~1/period of matching probes (hash-selected). */
    std::uint64_t period = 1;
    /** Stop after this many fires; 0 = unlimited (persistent). */
    std::uint64_t limit = 0;
};

/** A seeded, reproducible set of injection rules. */
struct FaultPlan {
    std::uint64_t seed = 0;
    std::vector<FaultArm> arms;

    bool empty() const { return arms.empty(); }

    /** Round-trips through parse(). */
    std::string toString() const;

    /** Parse the GZKP_FAULTS syntax documented in the file comment. */
    static StatusOr<FaultPlan> parse(std::string_view spec);
};

/** Install a plan process-wide (replaces any existing plan). */
void installPlan(const FaultPlan &plan);

/** Remove the active plan; all probes become no-ops again. */
void clearPlan();

/** True when a non-empty plan is installed (the probe fast path). */
bool active();

/** The installed plan (empty plan when none). */
FaultPlan currentPlan();

/**
 * Parse GZKP_FAULTS and install it. OK (and a no-op) when the
 * variable is unset or empty; the parse error otherwise.
 */
Status installFromEnv();

/** Total probe fires since the plan was installed (diagnostics). */
std::uint64_t firedCount();

/**
 * The retry epoch, mixed into every fire decision. The recovery
 * layer bumps it between attempts so unlimited high-period arms
 * re-roll rather than replay; installPlan resets it to 0.
 */
void advanceEpoch();
std::uint64_t currentEpoch();

/** RAII plan installation for tests. */
class ScopedFaultPlan
{
  public:
    explicit ScopedFaultPlan(const FaultPlan &plan);
    /** Parses `spec`; throws StatusError on a malformed spec. */
    explicit ScopedFaultPlan(std::string_view spec);
    ~ScopedFaultPlan();

    ScopedFaultPlan(const ScopedFaultPlan &) = delete;
    ScopedFaultPlan &operator=(const ScopedFaultPlan &) = delete;

  private:
    FaultPlan prev_;
    bool hadPrev_;
};

// ---------------------------------------------------------------- probes

/**
 * Core decision: does a probe of `kind` at (`site`, `index`) fire
 * under the installed plan? Also returns a per-fire salt stream for
 * choosing which bit/element to corrupt. False when no plan active.
 */
struct FireDecision {
    bool fire = false;
    std::uint64_t salt = 0;
};
FireDecision decide(FaultKind kind, const char *site,
                    std::uint64_t index);

inline bool
shouldFire(FaultKind kind, const char *site, std::uint64_t index)
{
    return decide(kind, site, index).fire;
}

/** Thrown by checkAlloc(); maps to kResourceExhausted. */
class InjectedAllocFailure : public StatusError
{
  public:
    explicit InjectedAllocFailure(const std::string &site)
        : StatusError(resourceExhaustedError(
              "injected allocation failure at " + site))
    {}
};

/** Thrown by checkLaunch(); maps to kUnavailable. */
class InjectedLaunchFailure : public StatusError
{
  public:
    explicit InjectedLaunchFailure(const std::string &site)
        : StatusError(unavailableError(
              "injected kernel-launch failure at " + site))
    {}
};

/** Allocation-site probe; throws InjectedAllocFailure on fire. */
inline void
checkAlloc(const char *site, std::uint64_t index)
{
    if (!active())
        return;
    if (shouldFire(FaultKind::Alloc, site, index))
        throw InjectedAllocFailure(site);
}

/** Kernel-launch-site probe; throws InjectedLaunchFailure on fire. */
inline void
checkLaunch(const char *site, std::uint64_t index)
{
    if (!active())
        return;
    if (shouldFire(FaultKind::Launch, site, index))
        throw InjectedLaunchFailure(site);
}

/**
 * The single-bit-flip corruption core: flips one raw Montgomery-
 * representation bit chosen by `salt`, then re-canonicalises below
 * the modulus so downstream arithmetic stays in-domain (the
 * corruption survives; only the representation invariant is
 * preserved).
 */
template <typename FpT>
void
flipBit(FpT &x, std::uint64_t salt)
{
    auto r = x.raw();
    std::size_t bit = std::size_t(salt % (FpT::kLimbs * 64));
    r.limbs[bit / 64] ^= std::uint64_t(1) << (bit % 64);
    while (!(r < FpT::modulus())) {
        typename FpT::Repr t;
        FpT::Repr::sub(r, FpT::modulus(), t);
        r = t;
    }
    if (r == x.raw())
        r = FpT::Repr::zero(); // flip cancelled by reduction: zero it
    x = FpT::fromRaw(r);
}

/** Single-bit soft error on one field element. True if it flipped. */
template <typename FpT>
bool
maybeFlip(FaultKind kind, FpT &x, const char *site, std::uint64_t index)
{
    if (!active())
        return false;
    FireDecision d = decide(kind, site, index);
    if (!d.fire)
        return false;
    flipBit(x, d.salt);
    return true;
}

/**
 * Coarse-grained soft error over an array: one probe per call (so
 * hot loops pay a single hash, not one per element); on fire, the
 * salt picks the victim element and the flipped bit. The element
 * choice is deterministic in (site, index), not in thread schedule.
 */
template <typename FrT>
bool
maybeCorruptElement(FaultKind kind, FrT *data, std::size_t size,
                    const char *site, std::uint64_t index)
{
    if (!active() || size == 0)
        return false;
    FireDecision d = decide(kind, site, index);
    if (!d.fire)
        return false;
    flipBit(data[d.salt % size], d.salt / (size + 1));
    return true;
}

template <typename FpT>
bool
maybeFlip(FpT &x, const char *site, std::uint64_t index)
{
    return maybeFlip(FaultKind::BitFlip, x, site, index);
}

/**
 * Corrupt a curve point (Jacobian or affine X displaced by one).
 * Field-agnostic (works for Fp and Fp2 coordinates), so it serves as
 * the Bucket / Butterfly corruption primitive on points. Returns
 * true if corruption happened.
 */
template <typename PointT>
bool
maybeCorruptPoint(FaultKind kind, PointT &p, const char *site,
                  std::uint64_t index)
{
    if (!active())
        return false;
    if (!decide(kind, site, index).fire)
        return false;
    using Field = typename PointT::Field;
    p.X += Field::one();
    return true;
}

} // namespace gzkp::faultsim

#endif // GZKP_FAULTSIM_FAULTSIM_HH
