#include "faultsim/faultsim.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>

namespace gzkp::faultsim {

namespace {

/** SplitMix64 finalizer (same mixer the testkit uses). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
hashSite(const char *site)
{
    // FNV-1a over the site name; sites are short literals.
    std::uint64_t h = 1469598103934665603ull;
    for (const char *p = site; *p; ++p) {
        h ^= std::uint64_t(static_cast<unsigned char>(*p));
        h *= 1099511628211ull;
    }
    return h;
}

/**
 * The installed plan plus its mutable fire counters. Swapped
 * atomically as a unit so probes never see a plan/counter mismatch.
 */
struct PlanState {
    FaultPlan plan;
    /** Per-arm fire counts (for `limit`); index-aligned with arms. */
    std::unique_ptr<std::atomic<std::uint64_t>[]> fires;

    explicit PlanState(const FaultPlan &p)
        : plan(p),
          fires(new std::atomic<std::uint64_t>[p.arms.size()]())
    {}
};

std::mutex g_mu;
std::shared_ptr<PlanState> g_state; // guarded by g_mu
std::atomic<bool> g_active{false};  // fast-path flag
std::atomic<std::uint64_t> g_fired{0};
std::atomic<std::uint64_t> g_epoch{0};

std::shared_ptr<PlanState>
loadState()
{
    std::lock_guard<std::mutex> lk(g_mu);
    return g_state;
}

bool
siteMatches(const std::string &pattern, const char *site)
{
    if (pattern.empty() || pattern == "*")
        return true;
    return std::strstr(site, pattern.c_str()) != nullptr;
}

} // namespace

const char *
name(FaultKind kind)
{
    switch (kind) {
    case FaultKind::Alloc: return "alloc";
    case FaultKind::BitFlip: return "bitflip";
    case FaultKind::Bucket: return "bucket";
    case FaultKind::Butterfly: return "butterfly";
    case FaultKind::Launch: return "launch";
    }
    return "unknown";
}

StatusOr<FaultKind>
kindFromName(std::string_view s)
{
    for (std::size_t i = 0; i < kFaultKindCount; ++i) {
        if (s == name(FaultKind(i)))
            return FaultKind(i);
    }
    return invalidArgumentError("unknown fault kind '" +
                                std::string(s) + "'");
}

std::string
FaultPlan::toString() const
{
    std::ostringstream os;
    os << "seed=" << seed;
    for (const auto &a : arms) {
        os << ";" << name(a.kind) << "@"
           << (a.site.empty() ? "*" : a.site) << ":" << a.period;
        if (a.limit != 0)
            os << "#" << a.limit;
    }
    return os.str();
}

StatusOr<FaultPlan>
FaultPlan::parse(std::string_view spec)
{
    FaultPlan plan;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t semi = spec.find(';', pos);
        if (semi == std::string_view::npos)
            semi = spec.size();
        std::string_view tok = spec.substr(pos, semi - pos);
        pos = semi + 1;
        if (tok.empty())
            continue;
        if (tok.substr(0, 5) == "seed=") {
            char *end = nullptr;
            std::string v(tok.substr(5));
            plan.seed = std::strtoull(v.c_str(), &end, 0);
            if (end == v.c_str() || *end != '\0')
                return invalidArgumentError(
                    "GZKP_FAULTS: bad seed '" + v + "'");
            continue;
        }
        // kind@site:period[#limit]
        std::size_t at = tok.find('@');
        if (at == std::string_view::npos)
            return invalidArgumentError(
                "GZKP_FAULTS: arm '" + std::string(tok) +
                "' missing '@' (expect kind@site:period[#limit])");
        FaultArm arm;
        GZKP_ASSIGN_OR_RETURN(arm.kind, kindFromName(tok.substr(0, at)));
        std::string_view rest = tok.substr(at + 1);
        std::size_t colon = rest.find(':');
        if (colon == std::string_view::npos) {
            arm.site = std::string(rest);
        } else {
            arm.site = std::string(rest.substr(0, colon));
            std::string nums(rest.substr(colon + 1));
            std::size_t hash = nums.find('#');
            std::string period_s =
                hash == std::string::npos ? nums : nums.substr(0, hash);
            char *end = nullptr;
            arm.period = std::strtoull(period_s.c_str(), &end, 0);
            if (end == period_s.c_str() || *end != '\0' ||
                arm.period == 0)
                return invalidArgumentError(
                    "GZKP_FAULTS: bad period '" + period_s + "'");
            if (hash != std::string::npos) {
                std::string limit_s = nums.substr(hash + 1);
                arm.limit = std::strtoull(limit_s.c_str(), &end, 0);
                if (end == limit_s.c_str() || *end != '\0')
                    return invalidArgumentError(
                        "GZKP_FAULTS: bad limit '" + limit_s + "'");
            }
        }
        if (arm.site.empty())
            arm.site = "*";
        plan.arms.push_back(std::move(arm));
    }
    return plan;
}

void
installPlan(const FaultPlan &plan)
{
    auto state = std::make_shared<PlanState>(plan);
    {
        std::lock_guard<std::mutex> lk(g_mu);
        g_state = std::move(state);
    }
    g_fired.store(0, std::memory_order_relaxed);
    g_epoch.store(0, std::memory_order_relaxed);
    g_active.store(!plan.arms.empty(), std::memory_order_release);
}

void
clearPlan()
{
    g_active.store(false, std::memory_order_release);
    std::lock_guard<std::mutex> lk(g_mu);
    g_state.reset();
}

bool
active()
{
    return g_active.load(std::memory_order_acquire);
}

FaultPlan
currentPlan()
{
    auto state = loadState();
    return state ? state->plan : FaultPlan();
}

Status
installFromEnv()
{
    const char *spec = std::getenv("GZKP_FAULTS");
    if (spec == nullptr || *spec == '\0')
        return Status::ok();
    auto plan = FaultPlan::parse(spec);
    if (!plan.isOk())
        return plan.status();
    installPlan(*plan);
    return Status::ok();
}

std::uint64_t
firedCount()
{
    return g_fired.load(std::memory_order_relaxed);
}

void
advanceEpoch()
{
    g_epoch.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
currentEpoch()
{
    return g_epoch.load(std::memory_order_relaxed);
}

ScopedFaultPlan::ScopedFaultPlan(const FaultPlan &plan)
    : prev_(currentPlan()), hadPrev_(active())
{
    installPlan(plan);
}

ScopedFaultPlan::ScopedFaultPlan(std::string_view spec)
    : prev_(currentPlan()), hadPrev_(active())
{
    auto plan = FaultPlan::parse(spec);
    if (!plan.isOk())
        throw StatusError(plan.status());
    installPlan(*plan);
}

ScopedFaultPlan::~ScopedFaultPlan()
{
    if (hadPrev_)
        installPlan(prev_);
    else
        clearPlan();
}

FireDecision
decide(FaultKind kind, const char *site, std::uint64_t index)
{
    FireDecision out;
    if (!active())
        return out;
    auto state = loadState();
    if (!state)
        return out;
    std::uint64_t epoch = g_epoch.load(std::memory_order_relaxed);
    std::uint64_t h = mix64(state->plan.seed ^ hashSite(site) ^
                            mix64(index) ^
                            (std::uint64_t(kind) << 56) ^
                            mix64(epoch ^ 0xc0ffee));
    for (std::size_t i = 0; i < state->plan.arms.size(); ++i) {
        const FaultArm &arm = state->plan.arms[i];
        if (arm.kind != kind || !siteMatches(arm.site, site))
            continue;
        if (h % arm.period != 0)
            continue;
        if (arm.limit != 0) {
            // Reserve a fire slot; release it if over the limit. The
            // *which-probe* decision stays schedule-independent; only
            // which of several same-instant fires hits a small limit
            // can race, which the chaos invariant tolerates.
            std::uint64_t n = state->fires[i].fetch_add(
                1, std::memory_order_relaxed);
            if (n >= arm.limit)
                continue;
        }
        g_fired.fetch_add(1, std::memory_order_relaxed);
        out.fire = true;
        out.salt = mix64(h ^ 0x5a5a5a5a5a5a5a5aull);
        return out;
    }
    return out;
}

} // namespace gzkp::faultsim
