/**
 * @file
 * Benchmark workload descriptors and generators.
 *
 * - Table 2 (xJsnark apps on MNT4753) and Tables 3/4 (Zcash on
 *   BLS12-381) are reproduced with size-matched instances: the
 *   vector sizes are the paper's, and the scalar vectors follow the
 *   sparse 0/1-heavy distribution that real bound-check-laden
 *   circuits produce (Section 4.2 / Figure 6).
 * - denseScalars() generates the uniform synthetic inputs of the
 *   microbenchmark tables (5-8).
 * - makeSyntheticCircuit() builds a *satisfiable* R1CS of a given
 *   size whose witness has the requested sparsity, for functional
 *   end-to-end proving at feasible scales.
 */

#ifndef GZKP_WORKLOAD_WORKLOADS_HH
#define GZKP_WORKLOAD_WORKLOADS_HH

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "workload/builder.hh"

namespace gzkp::workload {

/** One end-to-end application workload row. */
struct AppWorkload {
    std::string name;
    std::size_t vectorSize; //!< the paper's N for this application
};

/** Table 2: zkSNARK applications (753-bit MNT4753 curve). */
inline std::vector<AppWorkload>
table2Workloads()
{
    return {
        {"AES", 16383},          {"SHA-256", 32767},
        {"RSAEnc", 98303},       {"RSASigVer", 131071},
        {"Merkle-Tree", 294911}, {"Auction", 557055},
    };
}

/** Tables 3/4: Zcash proof workloads (381-bit BLS12-381 curve). */
inline std::vector<AppWorkload>
table3Workloads()
{
    return {
        {"Sapling_Output", 8191},
        {"Sapling_Spend", 131071},
        {"Sprout", 2097151},
    };
}

/** Distribution of scalar values in a workload's u vector. */
struct SparsityProfile {
    double zeroFrac = 0.0;  //!< exactly 0 (skipped entirely)
    double oneFrac = 0.0;   //!< exactly 1 (trivial PMUL)
    double smallFrac = 0.0; //!< < 2^16 (bound-check remnants)
    // remainder: uniform random field elements
};

/** The 0/1-heavy profile of real Zcash/xJsnark witnesses. */
inline SparsityProfile
zcashProfile()
{
    return {0.30, 0.25, 0.15};
}

/** Fully dense profile (the synthetic data of Tables 5-8). */
inline SparsityProfile
denseProfile()
{
    return {0.0, 0.0, 0.0};
}

/** Generate n scalars following a sparsity profile. */
template <typename Fr, typename Rng>
std::vector<Fr>
sparseScalars(std::size_t n, const SparsityProfile &p, Rng &rng)
{
    std::uniform_real_distribution<double> u(0.0, 1.0);
    std::uniform_int_distribution<std::uint64_t> small(2, 1 << 16);
    std::vector<Fr> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        double x = u(rng);
        if (x < p.zeroFrac)
            out.push_back(Fr::zero());
        else if (x < p.zeroFrac + p.oneFrac)
            out.push_back(Fr::one());
        else if (x < p.zeroFrac + p.oneFrac + p.smallFrac)
            out.push_back(Fr::fromUint64(small(rng)));
        else
            out.push_back(Fr::random(rng));
    }
    return out;
}

template <typename Fr, typename Rng>
std::vector<Fr>
denseScalars(std::size_t n, Rng &rng)
{
    return sparseScalars<Fr>(n, denseProfile(), rng);
}

/**
 * Build a satisfiable synthetic circuit with ~`constraints`
 * constraints whose witness mixes boolean (bound-check) variables
 * and full-width products, mimicking real application circuits.
 * `boolFrac` of the constraints are booleanity checks.
 */
template <typename Fr, typename Rng>
Builder<Fr>
makeSyntheticCircuit(std::size_t constraints, double bool_frac, Rng &rng)
{
    Builder<Fr> b(1);
    b.setPublic(1, Fr::fromUint64(42));

    // Seed witness material.
    std::vector<std::size_t> pool;
    pool.push_back(b.alloc(Fr::random(rng)));
    pool.push_back(b.alloc(Fr::random(rng)));
    std::uniform_real_distribution<double> u(0.0, 1.0);

    while (b.cs().numConstraints() + 2 < constraints) {
        if (u(rng) < bool_frac) {
            // Range-style booleanity: allocate a fresh bit.
            std::size_t bit =
                b.alloc((rng() & 1) ? Fr::one() : Fr::zero());
            b.assertBool(bit);
            pool.push_back(bit);
        } else {
            std::size_t x = pool[rng() % pool.size()];
            std::size_t y = pool[rng() % pool.size()];
            pool.push_back(b.mul(x, y));
        }
        if (pool.size() > 64)
            pool.erase(pool.begin(), pool.begin() + 32);
    }
    // Tie the public input in so it is not vacuous.
    std::size_t v = b.alloc(b.value(0) * Fr::fromUint64(42));
    b.assertEqual(zkp::LinComb<Fr>(1, Fr::one()), v);
    return b;
}

/**
 * A real Merkle-membership circuit (the paper's Merkle-Tree app):
 * prove that a secret leaf lies in a tree with public root.
 * Returns the builder; public input 1 is the root.
 */
template <typename Fr, typename Rng>
Builder<Fr>
makeMerkleCircuit(std::size_t depth, Rng &rng)
{
    Builder<Fr> b(1);
    auto leaf = b.alloc(Fr::random(rng));
    std::vector<std::size_t> sib, dir;
    for (std::size_t i = 0; i < depth; ++i) {
        sib.push_back(b.alloc(Fr::random(rng)));
        dir.push_back(b.alloc((rng() & 1) ? Fr::one() : Fr::zero()));
    }
    auto root = b.merklePath(leaf, sib, dir);
    b.setPublic(1, b.value(root));
    b.assertEqual(zkp::LinComb<Fr>(root, Fr::one()), 1);
    return b;
}

/**
 * A Poseidon hash-chain circuit: prove knowledge of a `length`-link
 * preimage chain ending in the public digest. ~244 constraints per
 * link; public input 1 is the final digest. This is the "Poseidon
 * hash" workload of the realistic suite (ZEKNOX / cuZK evaluate on
 * exactly this circuit shape).
 */
template <typename Fr, typename Rng>
Builder<Fr>
makePoseidonChainCircuit(std::size_t length, Rng &rng)
{
    if (length == 0)
        throw std::invalid_argument(
            "makePoseidonChainCircuit: length must be >= 1");
    Builder<Fr> b(1);
    auto cur = b.alloc(Fr::random(rng));
    for (std::size_t i = 0; i < length; ++i)
        cur = b.poseidonHash2(cur, b.alloc(Fr::random(rng)));
    b.setPublic(1, b.value(cur));
    b.assertEqual(zkp::LinComb<Fr>(cur, Fr::one()), 1);
    return b;
}

/** Shape of one N-ary Poseidon Merkle-membership instance. */
struct MerkleShape {
    std::size_t depth = 4;     //!< tree levels walked
    std::size_t arity = 2;     //!< children per node (>= 2)
    std::uint64_t leafIndex = 0; //!< leaf position, < arity^depth

    /** Per-level child slot of the walked node, bottom-up. */
    std::size_t
    slot(std::size_t level) const
    {
        std::uint64_t idx = leafIndex;
        for (std::size_t i = 0; i < level; ++i)
            idx /= arity;
        return std::size_t(idx % arity);
    }
};

/**
 * An N-ary Poseidon Merkle-membership circuit: prove that a secret
 * leaf lies at a secret position of a tree with public root. Nodes
 * compress their `arity` children with a left-to-right Poseidon
 * hash chain; each level carries a one-hot selector for the walked
 * child (see Builder::poseidonMerkleLevel). `sibling_material`
 * provides the depth * (arity - 1) sibling values in walk order --
 * the hook the scalar-regime generators use to steer the witness
 * distribution.
 */
template <typename Fr>
Builder<Fr>
makePoseidonMerkleCircuit(const MerkleShape &shape, const Fr &leaf,
                          const std::vector<Fr> &sibling_material)
{
    if (shape.arity < 2)
        throw std::invalid_argument(
            "makePoseidonMerkleCircuit: arity must be >= 2");
    if (shape.depth == 0)
        throw std::invalid_argument(
            "makePoseidonMerkleCircuit: depth must be >= 1");
    if (sibling_material.size() < shape.depth * (shape.arity - 1))
        throw std::invalid_argument(
            "makePoseidonMerkleCircuit: not enough sibling material");
    Builder<Fr> b(1);
    auto cur = b.alloc(leaf);
    std::size_t si = 0;
    for (std::size_t level = 0; level < shape.depth; ++level) {
        std::vector<std::size_t> sibs;
        for (std::size_t j = 0; j + 1 < shape.arity; ++j)
            sibs.push_back(b.alloc(sibling_material[si++]));
        cur = b.poseidonMerkleLevel(cur, sibs, shape.slot(level));
    }
    b.setPublic(1, b.value(cur));
    b.assertEqual(zkp::LinComb<Fr>(cur, Fr::one()), 1);
    return b;
}

/** Convenience overload: random leaf and sibling values. */
template <typename Fr, typename Rng>
Builder<Fr>
makePoseidonMerkleCircuit(std::size_t depth, std::size_t arity,
                          std::uint64_t leaf_index, Rng &rng)
{
    MerkleShape shape{depth, arity, leaf_index};
    std::vector<Fr> sibs;
    for (std::size_t i = 0; i < depth * (arity - 1); ++i)
        sibs.push_back(Fr::random(rng));
    return makePoseidonMerkleCircuit<Fr>(shape, Fr::random(rng),
                                         sibs);
}

/**
 * A sealed-bid auction circuit (the paper's Auction app): prove that
 * the secret bid exceeds the public current-best without revealing
 * it. Public input 1 is the current best; input 2 a commitment to
 * the bid (MiMC with a secret blinding key).
 */
template <typename Fr, typename Rng>
Builder<Fr>
makeAuctionCircuit(std::uint64_t bid, std::uint64_t best, Rng &rng)
{
    Builder<Fr> b(2);
    b.setPublic(1, Fr::fromUint64(best));
    auto bid_v = b.alloc(Fr::fromUint64(bid));
    auto blind = b.alloc(Fr::random(rng));
    // bid > best (64-bit range).
    auto best_v = b.alloc(Fr::fromUint64(best));
    b.assertEqual(zkp::LinComb<Fr>(1, Fr::one()), best_v);
    b.assertGreater(bid_v, best_v, 64);
    // Commitment binds the bid.
    auto comm = b.mimcHash2(bid_v, blind);
    b.setPublic(2, b.value(comm));
    b.assertEqual(zkp::LinComb<Fr>(comm, Fr::one()), 2);
    return b;
}

} // namespace gzkp::workload

#endif // GZKP_WORKLOAD_WORKLOADS_HH
