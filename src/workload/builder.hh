/**
 * @file
 * Circuit builder and gadget library.
 *
 * Builder keeps an R1CS and its satisfying assignment in lock-step,
 * the way xJsnark-style frontends do, so examples and tests can
 * construct real provable statements: multiplications, booleanity,
 * bit decomposition (the "bound checks and range constraints" that
 * make real-world scalar vectors sparse -- Section 4.2), a MiMC-like
 * permutation hash, Merkle-path verification, and comparisons.
 */

#ifndef GZKP_WORKLOAD_BUILDER_HH
#define GZKP_WORKLOAD_BUILDER_HH

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "zkp/r1cs.hh"

namespace gzkp::workload {

using zkp::LinComb;
using zkp::R1cs;

/** Number of rounds of the MiMC-like permutation. */
inline constexpr std::size_t kMimcRounds = 91;

template <typename Fr>
class Builder
{
  public:
    using Var = std::size_t;

    explicit Builder(std::size_t num_public)
        : cs_(num_public), z_(num_public + 1, Fr::zero())
    {
        z_[0] = Fr::one();
    }

    R1cs<Fr> &cs() { return cs_; }
    const R1cs<Fr> &cs() const { return cs_; }
    const std::vector<Fr> &assignment() const { return z_; }
    const Fr &value(Var v) const { return z_[v]; }

    /** Set the value of public input i (1-based, i <= numPublic). */
    void
    setPublic(std::size_t i, const Fr &v)
    {
        if (i == 0 || i > cs_.numPublic())
            throw std::out_of_range("Builder::setPublic");
        z_[i] = v;
    }

    /** Allocate a witness variable holding `v`. */
    Var
    alloc(const Fr &v)
    {
        z_.push_back(v);
        return cs_.allocVar();
    }

    /** c = a * b with one constraint. */
    Var
    mul(Var a, Var b)
    {
        Var c = alloc(z_[a] * z_[b]);
        cs_.addConstraint(LinComb<Fr>(a, Fr::one()),
                          LinComb<Fr>(b, Fr::one()),
                          LinComb<Fr>(c, Fr::one()));
        return c;
    }

    /** c = lincomb_a * lincomb_b with one constraint. */
    Var
    mulLin(const LinComb<Fr> &a, const LinComb<Fr> &b)
    {
        Var c = alloc(a.evaluate(z_) * b.evaluate(z_));
        cs_.addConstraint(a, b, LinComb<Fr>(c, Fr::one()));
        return c;
    }

    /** Constrain lc_a * lc_b == lc_c. */
    void
    constrain(const LinComb<Fr> &a, const LinComb<Fr> &b,
              const LinComb<Fr> &c)
    {
        cs_.addConstraint(a, b, c);
    }

    /** b * (b - 1) = 0: booleanity (a paper "bound check"). */
    void
    assertBool(Var b)
    {
        LinComb<Fr> bm1(b, Fr::one());
        bm1.add(0, -Fr::one());
        cs_.addConstraint(LinComb<Fr>(b, Fr::one()), bm1, LinComb<Fr>());
    }

    /** Constrain lc to equal variable v (via lc * 1 = v). */
    void
    assertEqual(const LinComb<Fr> &lc, Var v)
    {
        cs_.addConstraint(lc, LinComb<Fr>(0, Fr::one()),
                          LinComb<Fr>(v, Fr::one()));
    }

    /**
     * Decompose variable `v` into `bits` boolean variables (LSB
     * first) and constrain the recomposition. This is the range
     * constraint responsible for the 0/1-heavy witness of real
     * workloads. The value must actually fit in `bits` bits.
     */
    std::vector<Var>
    decompose(Var v, std::size_t bits)
    {
        auto repr = z_[v].toBigInt();
        std::vector<Var> out;
        LinComb<Fr> recomp;
        Fr pow = Fr::one();
        for (std::size_t i = 0; i < bits; ++i) {
            Var b = alloc(repr.bit(i) ? Fr::one() : Fr::zero());
            assertBool(b);
            recomp.add(b, pow);
            pow = pow.dbl();
            out.push_back(b);
        }
        assertEqual(recomp, v);
        return out;
    }

    /**
     * One round of the MiMC-like permutation:
     * x' = (x + key + c_i)^3. Two constraints (square, then cube).
     */
    Var
    mimcRound(Var x, Var key, const Fr &round_const)
    {
        LinComb<Fr> t(x, Fr::one());
        t.add(key, Fr::one()).add(0, round_const);
        Var sq = mulLin(t, t);
        return mulLin(LinComb<Fr>(sq, Fr::one()), t);
    }

    /** Full MiMC permutation with key; 2 * kMimcRounds constraints. */
    Var
    mimcPermute(Var x, Var key)
    {
        Fr c = Fr::fromUint64(0x6d696d63); // "mimc" seed
        Var cur = x;
        for (std::size_t i = 0; i < kMimcRounds; ++i) {
            cur = mimcRound(cur, key, c);
            c = c * c + Fr::fromUint64(i + 1); // fixed round schedule
        }
        // Final key addition: out = cur + key.
        LinComb<Fr> sum(cur, Fr::one());
        sum.add(key, Fr::one());
        Var out = alloc(z_[cur] + z_[key]);
        assertEqual(sum, out);
        return out;
    }

    /** Two-to-one compression h = MiMC(l; key = r) + r. */
    Var
    mimcHash2(Var l, Var r)
    {
        Var p = mimcPermute(l, r);
        LinComb<Fr> sum(p, Fr::one());
        sum.add(r, Fr::one());
        Var out = alloc(z_[p] + z_[r]);
        assertEqual(sum, out);
        return out;
    }

    /**
     * Conditional swap: returns (l', r') equal to (l, r) when s = 0
     * and (r, l) when s = 1. s must be boolean.
     */
    std::pair<Var, Var>
    condSwap(Var s, Var l, Var r)
    {
        // d = s * (r - l); l' = l + d; r' = r - d.
        LinComb<Fr> diff(r, Fr::one());
        diff.add(l, -Fr::one());
        Var d = mulLin(LinComb<Fr>(s, Fr::one()), diff);
        Var lp = alloc(z_[l] + z_[d]);
        LinComb<Fr> lsum(l, Fr::one());
        lsum.add(d, Fr::one());
        assertEqual(lsum, lp);
        Var rp = alloc(z_[r] - z_[d]);
        LinComb<Fr> rsum(r, Fr::one());
        rsum.add(d, -Fr::one());
        assertEqual(rsum, rp);
        return {lp, rp};
    }

    /**
     * Merkle-path verification: walk from `leaf` to the root using
     * `siblings` and boolean `directions` (1 = current node is the
     * right child). Returns the computed root variable.
     */
    Var
    merklePath(Var leaf, const std::vector<Var> &siblings,
               const std::vector<Var> &directions)
    {
        Var cur = leaf;
        for (std::size_t i = 0; i < siblings.size(); ++i) {
            assertBool(directions[i]);
            auto [l, r] = condSwap(directions[i], cur, siblings[i]);
            cur = mimcHash2(l, r);
        }
        return cur;
    }

    /**
     * Assert a > b over `bits`-bit values by decomposing a - b - 1
     * (which must be non-negative and fit `bits` bits). Used by the
     * auction workload.
     */
    void
    assertGreater(Var a, Var b, std::size_t bits)
    {
        Fr dv = z_[a] - z_[b] - Fr::one();
        Var d = alloc(dv);
        LinComb<Fr> lc(a, Fr::one());
        lc.add(b, -Fr::one()).add(0, -Fr::one());
        assertEqual(lc, d);
        decompose(d, bits);
    }

  private:
    R1cs<Fr> cs_;
    std::vector<Fr> z_;
};

} // namespace gzkp::workload

#endif // GZKP_WORKLOAD_BUILDER_HH
