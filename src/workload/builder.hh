/**
 * @file
 * Circuit builder and gadget library.
 *
 * Builder keeps an R1CS and its satisfying assignment in lock-step,
 * the way xJsnark-style frontends do, so examples and tests can
 * construct real provable statements: multiplications, booleanity,
 * bit decomposition (the "bound checks and range constraints" that
 * make real-world scalar vectors sparse -- Section 4.2), a MiMC-like
 * permutation hash, Merkle-path verification, and comparisons.
 */

#ifndef GZKP_WORKLOAD_BUILDER_HH
#define GZKP_WORKLOAD_BUILDER_HH

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "zkp/poseidon.hh"
#include "zkp/r1cs.hh"

namespace gzkp::workload {

using zkp::LinComb;
using zkp::R1cs;

/** Number of rounds of the MiMC-like permutation. */
inline constexpr std::size_t kMimcRounds = 91;

template <typename Fr>
class Builder
{
  public:
    using Var = std::size_t;

    explicit Builder(std::size_t num_public)
        : cs_(num_public), z_(num_public + 1, Fr::zero())
    {
        z_[0] = Fr::one();
    }

    R1cs<Fr> &cs() { return cs_; }
    const R1cs<Fr> &cs() const { return cs_; }
    const std::vector<Fr> &assignment() const { return z_; }
    const Fr &value(Var v) const { return z_[v]; }

    /** Set the value of public input i (1-based, i <= numPublic). */
    void
    setPublic(std::size_t i, const Fr &v)
    {
        if (i == 0 || i > cs_.numPublic())
            throw std::out_of_range("Builder::setPublic");
        z_[i] = v;
    }

    /** Allocate a witness variable holding `v`. */
    Var
    alloc(const Fr &v)
    {
        z_.push_back(v);
        return cs_.allocVar();
    }

    /** c = a * b with one constraint. */
    Var
    mul(Var a, Var b)
    {
        Var c = alloc(z_[a] * z_[b]);
        cs_.addConstraint(LinComb<Fr>(a, Fr::one()),
                          LinComb<Fr>(b, Fr::one()),
                          LinComb<Fr>(c, Fr::one()));
        return c;
    }

    /** c = lincomb_a * lincomb_b with one constraint. */
    Var
    mulLin(const LinComb<Fr> &a, const LinComb<Fr> &b)
    {
        Var c = alloc(a.evaluate(z_) * b.evaluate(z_));
        cs_.addConstraint(a, b, LinComb<Fr>(c, Fr::one()));
        return c;
    }

    /** Constrain lc_a * lc_b == lc_c. */
    void
    constrain(const LinComb<Fr> &a, const LinComb<Fr> &b,
              const LinComb<Fr> &c)
    {
        cs_.addConstraint(a, b, c);
    }

    /** b * (b - 1) = 0: booleanity (a paper "bound check"). */
    void
    assertBool(Var b)
    {
        LinComb<Fr> bm1(b, Fr::one());
        bm1.add(0, -Fr::one());
        cs_.addConstraint(LinComb<Fr>(b, Fr::one()), bm1, LinComb<Fr>());
    }

    /** Constrain lc to equal variable v (via lc * 1 = v). */
    void
    assertEqual(const LinComb<Fr> &lc, Var v)
    {
        cs_.addConstraint(lc, LinComb<Fr>(0, Fr::one()),
                          LinComb<Fr>(v, Fr::one()));
    }

    /**
     * Decompose variable `v` into `bits` boolean variables (LSB
     * first) and constrain the recomposition. This is the range
     * constraint responsible for the 0/1-heavy witness of real
     * workloads. The value must actually fit in `bits` bits.
     */
    std::vector<Var>
    decompose(Var v, std::size_t bits)
    {
        auto repr = z_[v].toBigInt();
        std::vector<Var> out;
        LinComb<Fr> recomp;
        Fr pow = Fr::one();
        for (std::size_t i = 0; i < bits; ++i) {
            Var b = alloc(repr.bit(i) ? Fr::one() : Fr::zero());
            assertBool(b);
            recomp.add(b, pow);
            pow = pow.dbl();
            out.push_back(b);
        }
        assertEqual(recomp, v);
        return out;
    }

    /**
     * One round of the MiMC-like permutation:
     * x' = (x + key + c_i)^3. Two constraints (square, then cube).
     */
    Var
    mimcRound(Var x, Var key, const Fr &round_const)
    {
        LinComb<Fr> t(x, Fr::one());
        t.add(key, Fr::one()).add(0, round_const);
        Var sq = mulLin(t, t);
        return mulLin(LinComb<Fr>(sq, Fr::one()), t);
    }

    /** Full MiMC permutation with key; 2 * kMimcRounds constraints. */
    Var
    mimcPermute(Var x, Var key)
    {
        Fr c = Fr::fromUint64(0x6d696d63); // "mimc" seed
        Var cur = x;
        for (std::size_t i = 0; i < kMimcRounds; ++i) {
            cur = mimcRound(cur, key, c);
            c = c * c + Fr::fromUint64(i + 1); // fixed round schedule
        }
        // Final key addition: out = cur + key.
        LinComb<Fr> sum(cur, Fr::one());
        sum.add(key, Fr::one());
        Var out = alloc(z_[cur] + z_[key]);
        assertEqual(sum, out);
        return out;
    }

    /** Two-to-one compression h = MiMC(l; key = r) + r. */
    Var
    mimcHash2(Var l, Var r)
    {
        Var p = mimcPermute(l, r);
        LinComb<Fr> sum(p, Fr::one());
        sum.add(r, Fr::one());
        Var out = alloc(z_[p] + z_[r]);
        assertEqual(sum, out);
        return out;
    }

    /**
     * Conditional swap: returns (l', r') equal to (l, r) when s = 0
     * and (r, l) when s = 1. s must be boolean.
     */
    std::pair<Var, Var>
    condSwap(Var s, Var l, Var r)
    {
        // d = s * (r - l); l' = l + d; r' = r - d.
        LinComb<Fr> diff(r, Fr::one());
        diff.add(l, -Fr::one());
        Var d = mulLin(LinComb<Fr>(s, Fr::one()), diff);
        Var lp = alloc(z_[l] + z_[d]);
        LinComb<Fr> lsum(l, Fr::one());
        lsum.add(d, Fr::one());
        assertEqual(lsum, lp);
        Var rp = alloc(z_[r] - z_[d]);
        LinComb<Fr> rsum(r, Fr::one());
        rsum.add(d, -Fr::one());
        assertEqual(rsum, rp);
        return {lp, rp};
    }

    /** x^5 S-box on a linear combination; 3 constraints. */
    Var
    sbox5(const LinComb<Fr> &x)
    {
        Var x2 = mulLin(x, x);
        LinComb<Fr> lc2(x2, Fr::one());
        Var x4 = mulLin(lc2, lc2);
        return mulLin(LinComb<Fr>(x4, Fr::one()), x);
    }

    /**
     * The Poseidon permutation (zkp::PoseidonX5, the published BN254
     * x5_254_3 instance) on a width-3 state of linear combinations.
     * The linear layers -- round-constant adds and the MDS mix --
     * are folded into the combinations, so only S-boxes cost
     * constraints: 3 each, 8 full rounds x 3 S-boxes + 57 partial
     * rounds x 1 S-box = 243 constraints per permutation. The
     * combinations are coalesced after every mix so partial-round
     * state stays proportional to the S-boxes emitted so far.
     */
    std::array<LinComb<Fr>, 3>
    poseidonPermute(std::array<LinComb<Fr>, 3> state)
    {
        using P = zkp::PoseidonX5<Fr>;
        const auto &c = P::roundConstants();
        const auto &m = P::mds();
        std::size_t ci = 0;
        auto round = [&](bool full) {
            for (unsigned i = 0; i < 3; ++i)
                state[i].add(0, c[ci++]);
            std::array<LinComb<Fr>, 3> sb;
            sb[0] = LinComb<Fr>(sbox5(state[0]), Fr::one());
            for (unsigned i = 1; i < 3; ++i)
                sb[i] = full
                    ? LinComb<Fr>(sbox5(state[i]), Fr::one())
                    : state[i];
            std::array<LinComb<Fr>, 3> mixed;
            for (unsigned i = 0; i < 3; ++i) {
                for (unsigned j = 0; j < 3; ++j)
                    mixed[i].addScaled(sb[j], m[i * 3 + j]);
                mixed[i].coalesce();
            }
            state = std::move(mixed);
        };
        for (unsigned r = 0; r < P::kFullRounds / 2; ++r)
            round(true);
        for (unsigned r = 0; r < P::kPartialRounds; ++r)
            round(false);
        for (unsigned r = 0; r < P::kFullRounds / 2; ++r)
            round(true);
        return state;
    }

    /**
     * Two-to-one Poseidon compression: sponge state (0, l, r),
     * permute, squeeze the capacity element. 244 constraints.
     */
    Var
    poseidonHash2(Var l, Var r)
    {
        std::array<LinComb<Fr>, 3> st = {LinComb<Fr>(),
                                         LinComb<Fr>(l, Fr::one()),
                                         LinComb<Fr>(r, Fr::one())};
        auto out = poseidonPermute(std::move(st));
        Var o = alloc(out[0].evaluate(z_));
        assertEqual(out[0], o);
        return o;
    }

    /**
     * Left-to-right chained Poseidon hash of >= 2 children -- the
     * node compression of the N-ary Merkle family (matches
     * zkp::PoseidonX5::hashMany).
     */
    Var
    poseidonHashMany(const std::vector<Var> &in)
    {
        if (in.size() < 2)
            throw std::invalid_argument(
                "Builder::poseidonHashMany: need >= 2 inputs");
        Var acc = poseidonHash2(in[0], in[1]);
        for (std::size_t i = 2; i < in.size(); ++i)
            acc = poseidonHash2(acc, in[i]);
        return acc;
    }

    /**
     * One level of an N-ary Poseidon Merkle path. `siblings` holds
     * the other arity-1 children in slot order (skipping `pos`,
     * the private slot of the current node). Allocates the full
     * child vector and a one-hot selector, constrains the selector
     * (booleanity, sum = 1, selected child = cur), and returns the
     * parent hash. The position is witness data: nothing about
     * `pos` leaks into the constraint structure.
     */
    Var
    poseidonMerkleLevel(Var cur, const std::vector<Var> &siblings,
                        std::size_t pos)
    {
        std::size_t arity = siblings.size() + 1;
        if (arity < 2 || pos >= arity)
            throw std::invalid_argument(
                "Builder::poseidonMerkleLevel: bad arity/pos");
        std::vector<Var> kids(arity);
        std::size_t si = 0;
        for (std::size_t j = 0; j < arity; ++j)
            kids[j] = j == pos ? alloc(z_[cur])
                               : alloc(z_[siblings[si++]]);
        // One-hot selector: each bit boolean, bits sum to one, and
        // the selected child equals the running node.
        LinComb<Fr> sum, picked;
        for (std::size_t j = 0; j < arity; ++j) {
            Var s = alloc(j == pos ? Fr::one() : Fr::zero());
            assertBool(s);
            sum.add(s, Fr::one());
            picked.add(mul(s, kids[j]), Fr::one());
        }
        constrain(sum, LinComb<Fr>(0, Fr::one()),
                  LinComb<Fr>(0, Fr::one()));
        assertEqual(picked, cur);
        // Siblings must re-appear verbatim in the hashed children.
        si = 0;
        for (std::size_t j = 0; j < arity; ++j) {
            if (j != pos)
                assertEqual(LinComb<Fr>(siblings[si++], Fr::one()),
                            kids[j]);
        }
        return poseidonHashMany(kids);
    }

    /**
     * Merkle-path verification: walk from `leaf` to the root using
     * `siblings` and boolean `directions` (1 = current node is the
     * right child). Returns the computed root variable.
     */
    Var
    merklePath(Var leaf, const std::vector<Var> &siblings,
               const std::vector<Var> &directions)
    {
        Var cur = leaf;
        for (std::size_t i = 0; i < siblings.size(); ++i) {
            assertBool(directions[i]);
            auto [l, r] = condSwap(directions[i], cur, siblings[i]);
            cur = mimcHash2(l, r);
        }
        return cur;
    }

    /**
     * Assert a > b over `bits`-bit values by decomposing a - b - 1
     * (which must be non-negative and fit `bits` bits). Used by the
     * auction workload.
     */
    void
    assertGreater(Var a, Var b, std::size_t bits)
    {
        Fr dv = z_[a] - z_[b] - Fr::one();
        Var d = alloc(dv);
        LinComb<Fr> lc(a, Fr::one());
        lc.add(b, -Fr::one()).add(0, -Fr::one());
        assertEqual(lc, d);
        decompose(d, bits);
    }

  private:
    R1cs<Fr> cs_;
    std::vector<Fr> z_;
};

} // namespace gzkp::workload

#endif // GZKP_WORKLOAD_BUILDER_HH
